"""Result serialization: JSON and CSV export of runs and comparisons.

Experiments are cheap to re-run but expensive to re-compare; these helpers
persist :class:`~repro.core.selection.SelectionResult` traces and harness
outcomes in plain formats any analysis stack can read.
"""

from __future__ import annotations

import csv
import json
from collections.abc import Mapping
from pathlib import Path

from repro.core.selection import FrameRecord, SelectionResult
from repro.engine.resilience import FaultStats
from repro.engine.store import CacheStats
from repro.runner.harness import TrialOutcome

__all__ = [
    "result_to_dict",
    "save_result_json",
    "load_result_json",
    "save_records_csv",
    "load_records_csv",
    "outcomes_to_rows",
    "save_outcomes_csv",
    "load_outcomes_csv",
    "cache_stats_to_dict",
    "save_cache_stats_json",
    "fault_stats_to_dict",
    "save_fault_stats_json",
]

_PathLike = str | Path


def result_to_dict(result: SelectionResult) -> dict:
    """A JSON-serializable view of a run."""
    return {
        "algorithm": result.algorithm,
        "budget_ms": result.budget_ms,
        "frames_processed": result.frames_processed,
        "s_sum": result.s_sum,
        "s_sum_estimated": result.s_sum_estimated,
        "mean_true_ap": result.mean_true_ap,
        "mean_normalized_cost": result.mean_normalized_cost,
        "total_charged_ms": result.total_charged_ms,
        "records": [
            {
                "iteration": r.iteration,
                "frame_index": r.frame_index,
                "selected": list(r.selected),
                "est_score": r.est_score,
                "est_ap": r.est_ap,
                "true_score": r.true_score,
                "true_ap": r.true_ap,
                "cost_ms": r.cost_ms,
                "normalized_cost": r.normalized_cost,
                "charged_ms": r.charged_ms,
                "realized": list(r.realized) if r.realized is not None else None,
            }
            for r in result.records
        ],
    }


def save_result_json(result: SelectionResult, path: _PathLike) -> None:
    """Write a run to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result_to_dict(result), handle, indent=2, sort_keys=True)


def load_result_json(path: _PathLike) -> SelectionResult:
    """Load a run previously written by :func:`save_result_json`."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    records = [
        FrameRecord(
            iteration=r["iteration"],
            frame_index=r["frame_index"],
            selected=tuple(r["selected"]),
            est_score=r["est_score"],
            est_ap=r["est_ap"],
            true_score=r["true_score"],
            true_ap=r["true_ap"],
            cost_ms=r["cost_ms"],
            normalized_cost=r["normalized_cost"],
            charged_ms=r["charged_ms"],
            realized=(
                tuple(r["realized"]) if r.get("realized") is not None else None
            ),
        )
        for r in payload["records"]
    ]
    return SelectionResult(
        algorithm=payload["algorithm"],
        records=records,
        budget_ms=payload["budget_ms"],
    )


_RECORD_COLUMNS = (
    "iteration",
    "frame_index",
    "selected",
    "est_score",
    "est_ap",
    "true_score",
    "true_ap",
    "cost_ms",
    "normalized_cost",
    "charged_ms",
    "realized",
    "degraded",
)


def save_records_csv(result: SelectionResult, path: _PathLike) -> None:
    """Write per-frame records to CSV (ensembles joined with '+').

    The ``realized`` column is empty when the record's ``realized`` field
    is ``None`` (fault-free frame), so :func:`load_records_csv` recovers
    the exact field — not the ``realized_key`` fallback to ``selected``.
    """
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_RECORD_COLUMNS)
        for r in result.records:
            writer.writerow(
                [
                    r.iteration,
                    r.frame_index,
                    "+".join(r.selected),
                    r.est_score,
                    r.est_ap,
                    r.true_score,
                    r.true_ap,
                    r.cost_ms,
                    r.normalized_cost,
                    r.charged_ms,
                    "" if r.realized is None else "+".join(r.realized),
                    r.degraded,
                ]
            )


def _parse_bool(text: str, column: str) -> bool:
    if text == "True":
        return True
    if text == "False":
        return False
    raise ValueError(f"column {column!r}: expected 'True'/'False', got {text!r}")


def load_records_csv(path: _PathLike) -> list[FrameRecord]:
    """Load per-frame records written by :func:`save_records_csv`.

    The inverse of :func:`save_records_csv`: for every record,
    ``load(save(x)) == x`` field for field, including ``realized is None``
    on fault-free frames.
    """
    records: list[FrameRecord] = []
    with open(path, encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or tuple(reader.fieldnames) != _RECORD_COLUMNS:
            raise ValueError(
                f"unexpected records-CSV header {reader.fieldnames!r}; "
                f"expected {list(_RECORD_COLUMNS)}"
            )
        for row in reader:
            realized_cell = row["realized"]
            record = FrameRecord(
                iteration=int(row["iteration"]),
                frame_index=int(row["frame_index"]),
                selected=tuple(row["selected"].split("+")),
                est_score=float(row["est_score"]),
                est_ap=float(row["est_ap"]),
                true_score=float(row["true_score"]),
                true_ap=float(row["true_ap"]),
                cost_ms=float(row["cost_ms"]),
                normalized_cost=float(row["normalized_cost"]),
                charged_ms=float(row["charged_ms"]),
                realized=(
                    tuple(realized_cell.split("+")) if realized_cell else None
                ),
            )
            degraded = _parse_bool(row["degraded"], "degraded")
            if degraded != record.degraded:
                raise ValueError(
                    f"inconsistent row: degraded={degraded} but "
                    f"selected={record.selected} realized={record.realized}"
                )
            records.append(record)
    return records


def outcomes_to_rows(outcomes: Mapping[str, TrialOutcome]) -> list[dict]:
    """Flatten a harness comparison into per-(algorithm, trial) rows."""
    rows: list[dict] = []
    for name, outcome in outcomes.items():
        for trial, s_sum in enumerate(outcome.s_sum):
            rows.append(
                {
                    "algorithm": name,
                    "trial": trial,
                    "s_sum": s_sum,
                    "mean_ap": outcome.mean_ap[trial],
                    "mean_cost": outcome.mean_cost[trial],
                    "frames_processed": outcome.frames_processed[trial],
                }
            )
    return rows


_OUTCOME_COLUMNS = (
    "algorithm",
    "trial",
    "s_sum",
    "mean_ap",
    "mean_cost",
    "frames_processed",
)


def save_outcomes_csv(
    outcomes: Mapping[str, TrialOutcome], path: _PathLike
) -> None:
    """Write a harness comparison to CSV."""
    rows = outcomes_to_rows(outcomes)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_OUTCOME_COLUMNS)
        writer.writeheader()
        writer.writerows(rows)


def load_outcomes_csv(path: _PathLike) -> dict[str, TrialOutcome]:
    """Load a harness comparison written by :func:`save_outcomes_csv`.

    The inverse of :func:`save_outcomes_csv`:
    ``load(save(outcomes)) == outcomes`` as long as each algorithm's rows
    were written in trial order (which :func:`outcomes_to_rows`
    guarantees).

    Raises:
        ValueError: On an unexpected header or out-of-order trial numbers.
    """
    outcomes: dict[str, TrialOutcome] = {}
    with open(path, encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or tuple(reader.fieldnames) != _OUTCOME_COLUMNS:
            raise ValueError(
                f"unexpected outcomes-CSV header {reader.fieldnames!r}; "
                f"expected {list(_OUTCOME_COLUMNS)}"
            )
        for row in reader:
            outcome = outcomes.setdefault(
                row["algorithm"], TrialOutcome(algorithm=row["algorithm"])
            )
            trial = int(row["trial"])
            if trial != len(outcome.s_sum):
                raise ValueError(
                    f"algorithm {row['algorithm']!r}: expected trial "
                    f"{len(outcome.s_sum)}, got {trial}"
                )
            outcome.s_sum.append(float(row["s_sum"]))
            outcome.mean_ap.append(float(row["mean_ap"]))
            outcome.mean_cost.append(float(row["mean_cost"]))
            outcome.frames_processed.append(int(row["frames_processed"]))
    return outcomes


def cache_stats_to_dict(stats: CacheStats) -> dict:
    """A JSON-serializable view of an :class:`EvaluationStore` snapshot."""
    return stats.as_dict()


def save_cache_stats_json(stats: CacheStats, path: _PathLike) -> None:
    """Write a store's :class:`CacheStats` snapshot to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(cache_stats_to_dict(stats), handle, indent=2, sort_keys=True)


def fault_stats_to_dict(stats: FaultStats) -> dict:
    """A JSON-serializable view of a run's :class:`FaultStats`."""
    return stats.as_dict()


def save_fault_stats_json(stats: FaultStats, path: _PathLike) -> None:
    """Write a :class:`FaultStats` snapshot to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(fault_stats_to_dict(stats), handle, indent=2, sort_keys=True)
