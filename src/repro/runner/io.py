"""Result serialization: JSON and CSV export of runs and comparisons.

Experiments are cheap to re-run but expensive to re-compare; these helpers
persist :class:`~repro.core.selection.SelectionResult` traces and harness
outcomes in plain formats any analysis stack can read.
"""

from __future__ import annotations

import csv
import json
from collections.abc import Mapping
from pathlib import Path

from repro.core.selection import FrameRecord, SelectionResult
from repro.engine.resilience import FaultStats
from repro.engine.store import CacheStats
from repro.runner.harness import TrialOutcome

__all__ = [
    "result_to_dict",
    "save_result_json",
    "load_result_json",
    "save_records_csv",
    "outcomes_to_rows",
    "save_outcomes_csv",
    "cache_stats_to_dict",
    "save_cache_stats_json",
    "fault_stats_to_dict",
    "save_fault_stats_json",
]

_PathLike = str | Path


def result_to_dict(result: SelectionResult) -> Dict:
    """A JSON-serializable view of a run."""
    return {
        "algorithm": result.algorithm,
        "budget_ms": result.budget_ms,
        "frames_processed": result.frames_processed,
        "s_sum": result.s_sum,
        "s_sum_estimated": result.s_sum_estimated,
        "mean_true_ap": result.mean_true_ap,
        "mean_normalized_cost": result.mean_normalized_cost,
        "total_charged_ms": result.total_charged_ms,
        "records": [
            {
                "iteration": r.iteration,
                "frame_index": r.frame_index,
                "selected": list(r.selected),
                "est_score": r.est_score,
                "est_ap": r.est_ap,
                "true_score": r.true_score,
                "true_ap": r.true_ap,
                "cost_ms": r.cost_ms,
                "normalized_cost": r.normalized_cost,
                "charged_ms": r.charged_ms,
                "realized": list(r.realized) if r.realized is not None else None,
            }
            for r in result.records
        ],
    }


def save_result_json(result: SelectionResult, path: _PathLike) -> None:
    """Write a run to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result_to_dict(result), handle, indent=2)


def load_result_json(path: _PathLike) -> SelectionResult:
    """Load a run previously written by :func:`save_result_json`."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    records = [
        FrameRecord(
            iteration=r["iteration"],
            frame_index=r["frame_index"],
            selected=tuple(r["selected"]),
            est_score=r["est_score"],
            est_ap=r["est_ap"],
            true_score=r["true_score"],
            true_ap=r["true_ap"],
            cost_ms=r["cost_ms"],
            normalized_cost=r["normalized_cost"],
            charged_ms=r["charged_ms"],
            realized=(
                tuple(r["realized"]) if r.get("realized") is not None else None
            ),
        )
        for r in payload["records"]
    ]
    return SelectionResult(
        algorithm=payload["algorithm"],
        records=records,
        budget_ms=payload["budget_ms"],
    )


_RECORD_COLUMNS = (
    "iteration",
    "frame_index",
    "selected",
    "est_score",
    "est_ap",
    "true_score",
    "true_ap",
    "cost_ms",
    "normalized_cost",
    "charged_ms",
    "realized",
)


def save_records_csv(result: SelectionResult, path: _PathLike) -> None:
    """Write per-frame records to CSV (ensembles joined with '+')."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_RECORD_COLUMNS)
        for r in result.records:
            writer.writerow(
                [
                    r.iteration,
                    r.frame_index,
                    "+".join(r.selected),
                    r.est_score,
                    r.est_ap,
                    r.true_score,
                    r.true_ap,
                    r.cost_ms,
                    r.normalized_cost,
                    r.charged_ms,
                    "+".join(r.realized_key),
                ]
            )


def outcomes_to_rows(outcomes: Mapping[str, TrialOutcome]) -> list[Dict]:
    """Flatten a harness comparison into per-(algorithm, trial) rows."""
    rows: list[Dict] = []
    for name, outcome in outcomes.items():
        for trial, s_sum in enumerate(outcome.s_sum):
            rows.append(
                {
                    "algorithm": name,
                    "trial": trial,
                    "s_sum": s_sum,
                    "mean_ap": outcome.mean_ap[trial],
                    "mean_cost": outcome.mean_cost[trial],
                    "frames_processed": outcome.frames_processed[trial],
                }
            )
    return rows


def save_outcomes_csv(
    outcomes: Mapping[str, TrialOutcome], path: _PathLike
) -> None:
    """Write a harness comparison to CSV."""
    rows = outcomes_to_rows(outcomes)
    columns = (
        "algorithm",
        "trial",
        "s_sum",
        "mean_ap",
        "mean_cost",
        "frames_processed",
    )
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        writer.writerows(rows)


def cache_stats_to_dict(stats: CacheStats) -> Dict:
    """A JSON-serializable view of an :class:`EvaluationStore` snapshot."""
    return stats.as_dict()


def save_cache_stats_json(stats: CacheStats, path: _PathLike) -> None:
    """Write a store's :class:`CacheStats` snapshot to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(cache_stats_to_dict(stats), handle, indent=2)


def fault_stats_to_dict(stats: FaultStats) -> Dict:
    """A JSON-serializable view of a run's :class:`FaultStats`."""
    return stats.as_dict()


def save_fault_stats_json(stats: FaultStats, path: _PathLike) -> None:
    """Write a :class:`FaultStats` snapshot to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(fault_stats_to_dict(stats), handle, indent=2)
