"""Single-trial experiment assembly: detector suites, environments, runs.

The detector suites mirror Section 5.2: YOLOv7-family and Faster R-CNN
structures specialized on different domains.  The ``m = 3`` suite is the
Figure 2 trio (three YOLOv7-tiny models trained on clear / night / rainy —
the paper's Yolo-C / Yolo-N / Yolo-R); ``m = 5`` adds a heavyweight
generalist and a fast generalist, giving the 31-ensemble lattice used in
most experiments; ``m = 2`` is the reduced pool of Figure 11.

:func:`run_algorithms` runs several algorithms over the same trial with a
shared evaluation cache, which is sound because detector outputs are
deterministic per frame — only the clocks and selections differ.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass

from repro.core.environment import DetectionEnvironment, EvaluationStore
from repro.core.scoring import ScoringFunction, WeightedLogScore
from repro.core.selection import SelectionAlgorithm, SelectionResult
from repro.engine.backends import ExecutionBackend
from repro.ensembling.base import EnsembleMethod
from repro.ensembling.wbf import WeightedBoxesFusion
from repro.obs import NULL_OBS, Observability
from repro.simulation.clock import CostModel
from repro.simulation.datasets import Dataset, build_bdd_like, build_nuscenes_like
from repro.simulation.detectors import SimulatedDetector
from repro.simulation.faults import apply_fault_profile
from repro.simulation.lidar import SimulatedLidar
from repro.simulation.profiles import make_profile
from repro.simulation.video import Frame
from repro.utils.rng import derive_seed

__all__ = [
    "nuscenes_detector_suite",
    "bdd_detector_suite",
    "TrialSetup",
    "standard_setup",
    "make_environment",
    "run_algorithms",
]

#: (architecture, domain) pairs per suite size, ordered so that smaller
#: suites are prefixes of larger ones.
_NUSC_SUITE: tuple[tuple[str, str], ...] = (
    ("yolov7-tiny", "clear"),
    ("yolov7-tiny", "night"),
    ("yolov7-tiny", "rainy"),
    ("yolov7", "all"),
    ("yolov7-micro", "all"),
    ("faster-rcnn", "all"),
)

_BDD_SUITE: tuple[tuple[str, str], ...] = (
    ("yolov7-tiny", "rainy"),
    ("yolov7-tiny", "snow"),
    ("yolov7-tiny", "clear"),
    ("yolov7", "all"),
    ("yolov7-micro", "all"),
    ("faster-rcnn", "all"),
)


def _build_suite(
    pairs: Sequence[tuple[str, str]], m: int, seed: int
) -> list[SimulatedDetector]:
    if not 1 <= m <= len(pairs):
        raise ValueError(f"m must be in [1, {len(pairs)}], got {m}")
    detectors: list[SimulatedDetector] = []
    for arch, domain in pairs[:m]:
        profile = make_profile(arch, domain)
        detectors.append(
            SimulatedDetector(profile, seed=derive_seed(seed, "det", profile.name))
        )
    return detectors


def nuscenes_detector_suite(m: int = 5, seed: int = 0) -> list[SimulatedDetector]:
    """The nuScenes experiment detector pool (m in 1..6)."""
    return _build_suite(_NUSC_SUITE, m, seed)


def bdd_detector_suite(m: int = 5, seed: int = 0) -> list[SimulatedDetector]:
    """The BDD experiment detector pool (m in 1..6)."""
    return _build_suite(_BDD_SUITE, m, seed)


@dataclass(frozen=True)
class TrialSetup:
    """Everything one experiment trial needs.

    Attributes:
        frames: The frame sequence ``V``.
        detectors: The pool ``M`` — plain :class:`SimulatedDetector`
            instances, or :class:`~repro.simulation.faults.FaultyDetector`
            wrappers when the setup injects faults.
        reference: The REF model.
        label: Human-readable dataset label (e.g. ``"nusc-night"``).
    """

    frames: tuple[Frame, ...]
    detectors: tuple[object, ...]
    reference: SimulatedLidar
    label: str


#: Dataset keys accepted by :func:`standard_setup`, mapped to
#: (builder, group, suite) triples.  ``None`` group means the whole dataset.
_DATASET_REGISTRY: dict[str, tuple[Callable[..., Dataset], str | None, str]] = {
    "nusc": (build_nuscenes_like, None, "nusc"),
    "nusc-clear": (build_nuscenes_like, "nusc-clear", "nusc"),
    "nusc-night": (build_nuscenes_like, "nusc-night", "nusc"),
    "nusc-rainy": (build_nuscenes_like, "nusc-rainy", "nusc"),
    "bdd": (build_bdd_like, None, "bdd"),
    "bdd-rainy": (build_bdd_like, "bdd-rainy", "bdd"),
    "bdd-snow": (build_bdd_like, "bdd-snow", "bdd"),
}


def dataset_keys() -> list[str]:
    """The dataset labels accepted by :func:`standard_setup`."""
    return sorted(_DATASET_REGISTRY)


def standard_setup(
    dataset: str = "nusc",
    trial: int = 0,
    scale: float = 0.01,
    m: int = 5,
    max_frames: int | None = None,
    seed: int = 0,
    fault_profile: str = "none",
    fault_seed: int | None = None,
) -> TrialSetup:
    """Build a trial: resampled dataset + detector suite + LiDAR REF.

    Args:
        dataset: One of :func:`dataset_keys`.
        trial: Trial number; trials differ in dataset resampling and
            detector noise seeds (the Section 5.4 protocol).
        scale: Fraction of the paper's scene counts to generate.
        m: Detector-pool size.
        max_frames: Optional cap on the frame-sequence length.
        seed: Base seed of the whole experiment family.
        fault_profile: One of
            :data:`~repro.simulation.faults.FAULT_PROFILE_NAMES`;
            anything but ``"none"`` wraps the suite in seeded
            :class:`~repro.simulation.faults.FaultyDetector` instances.
        fault_seed: Root seed of the fault streams; derived from ``seed``
            and the trial when omitted, so trials fail differently but
            reproducibly.
    """
    if dataset not in _DATASET_REGISTRY:
        raise KeyError(
            f"unknown dataset {dataset!r}; known: {dataset_keys()}"
        )
    builder, group, suite = _DATASET_REGISTRY[dataset]
    data = builder(seed=derive_seed(seed, "data", dataset, trial), scale=scale)
    video = data.as_video(group)
    frames: tuple[Frame, ...] = video.frames
    if max_frames is not None:
        frames = frames[:max_frames]

    suite_seed = derive_seed(seed, "suite", dataset, trial)
    if suite == "nusc":
        detectors: list[object] = list(nuscenes_detector_suite(m, seed=suite_seed))
    else:
        detectors = list(bdd_detector_suite(m, seed=suite_seed))
    if fault_profile != "none":
        if fault_seed is None:
            fault_seed = derive_seed(seed, "faults", dataset, trial)
        detectors = apply_fault_profile(
            detectors, fault_profile, seed=fault_seed
        )
    reference = SimulatedLidar(seed=derive_seed(seed, "lidar", dataset, trial))
    return TrialSetup(
        frames=tuple(frames),
        detectors=tuple(detectors),
        reference=reference,
        label=dataset,
    )


def make_environment(
    setup: TrialSetup,
    scoring: ScoringFunction | None = None,
    fusion: EnsembleMethod | None = None,
    cost_model: CostModel | None = None,
    cache: EvaluationStore | None = None,
    backend: ExecutionBackend | None = None,
    billing: str = "sum",
    obs: Observability = NULL_OBS,
) -> DetectionEnvironment:
    """A fresh environment over a trial setup (optionally sharing a store).

    Args:
        setup: The trial.
        scoring / fusion / cost_model: Environment configuration.
        cache: Optional shared :class:`EvaluationStore`.
        backend: Optional execution backend (serial by default); affects
            wall clock only.
        billing: Detector billing policy (``"sum"`` per Eq. 12/14, or
            ``"max"`` for parallel-device deployments).
        obs: Observability facade threaded into the environment (and
            through it, the frame pipeline).
    """
    return DetectionEnvironment(
        detectors=list(setup.detectors),
        reference=setup.reference,
        scoring=scoring if scoring is not None else WeightedLogScore(0.5),
        fusion=fusion if fusion is not None else WeightedBoxesFusion(),
        cost_model=cost_model,
        cache=cache,
        backend=backend,
        billing=billing,
        obs=obs,
    )


def run_algorithms(
    setup: TrialSetup,
    algorithms: Mapping[str, Callable[[], SelectionAlgorithm]],
    scoring: ScoringFunction | None = None,
    budget_ms: float | None = None,
    fusion: EnsembleMethod | None = None,
    cache: EvaluationStore | None = None,
    backend: ExecutionBackend | None = None,
    billing: str = "sum",
    obs: Observability = NULL_OBS,
) -> dict[str, SelectionResult]:
    """Run several algorithms on one trial with a shared evaluation store.

    Args:
        setup: The trial.
        algorithms: Name -> zero-argument factory producing a *fresh*
            algorithm instance (selection algorithms are stateful).
        scoring: Scoring function shared by all runs.
        budget_ms: Optional TCVI budget applied to every run.
        fusion: Fusion method (WBF by default).
        cache: Optional externally owned :class:`EvaluationStore` (e.g.
            shared across the budget points of a sweep over the same
            trial).
        backend: Optional execution backend shared by all runs (the caller
            owns its lifecycle); wall clock only, results unchanged.
        billing: Detector billing policy for every run.
        obs: Observability facade shared by every run (per-algorithm
            series are separated by the ``algorithm`` metric label).

    Returns:
        Name -> the algorithm's :class:`SelectionResult`.
    """
    if cache is None:
        cache = EvaluationStore(obs=obs)
    results: dict[str, SelectionResult] = {}
    for name, factory in algorithms.items():
        env = make_environment(
            setup,
            scoring=scoring,
            fusion=fusion,
            cache=cache,
            backend=backend,
            billing=billing,
            obs=obs,
        )
        algorithm = factory()
        results[name] = algorithm.run(env, setup.frames, budget_ms=budget_ms)
    return results
