"""Parameter sweeps behind Figures 5, 6, 9, 11 and 12.

Each sweep varies one experimental knob — scoring weights, budget, pool
size, or the initialization length gamma — and re-runs the multi-trial
comparison at every point, returning nested ``{point: {algorithm:
TrialOutcome}}`` structures the benchmarks format into the paper's series.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence

from repro.core.scoring import WeightedLogScore
from repro.core.selection import SelectionAlgorithm
from repro.runner.experiment import TrialSetup
from repro.runner.harness import TrialOutcome, compare_algorithms

__all__ = ["weight_sweep", "budget_sweep", "gamma_sweep"]


def weight_sweep(
    setup_factory: Callable[[int], TrialSetup],
    algorithms: Mapping[str, Callable[[], SelectionAlgorithm]],
    accuracy_weights: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    num_trials: int = 5,
    budget_ms: float | None = None,
) -> dict[float, dict[str, TrialOutcome]]:
    """Re-run the comparison at several ``(w1, w2)`` combinations.

    Figure 5 / Figure 9: ``w1`` is the accuracy weight; ``w2 = 1 - w1``.
    """
    results: dict[float, dict[str, TrialOutcome]] = {}
    # Weight points share per-trial caches: detector outputs and AP values
    # are scoring-independent (scores are recomputed from cached AP).
    cache_by_trial: dict[int, object] = {}
    for w1 in accuracy_weights:
        scoring = WeightedLogScore(accuracy_weight=w1)
        results[w1] = compare_algorithms(
            setup_factory,
            algorithms,
            num_trials=num_trials,
            scoring=scoring,
            budget_ms=budget_ms,
            cache_by_trial=cache_by_trial,
        )
    return results


def budget_sweep(
    setup_factory: Callable[[int], TrialSetup],
    algorithms: Mapping[str, Callable[[], SelectionAlgorithm]],
    budgets_ms: Sequence[float],
    num_trials: int = 3,
    accuracy_weight: float = 0.5,
) -> dict[float, dict[str, TrialOutcome]]:
    """Re-run the comparison at several TCVI budgets (Figure 6)."""
    if not budgets_ms:
        raise ValueError("budgets_ms must be non-empty")
    scoring = WeightedLogScore(accuracy_weight=accuracy_weight)
    results: dict[float, dict[str, TrialOutcome]] = {}
    # Budget points re-run identical trials; sharing per-trial caches means
    # each frame is inferred once across the entire sweep.
    cache_by_trial: dict[int, object] = {}
    for budget in budgets_ms:
        results[budget] = compare_algorithms(
            setup_factory,
            algorithms,
            num_trials=num_trials,
            scoring=scoring,
            budget_ms=budget,
            cache_by_trial=cache_by_trial,
        )
    return results


def gamma_sweep(
    setup_factory: Callable[[int], TrialSetup],
    algorithm_for_gamma: Callable[[int], SelectionAlgorithm],
    gammas: Sequence[int],
    num_trials: int = 3,
    accuracy_weight: float = 0.5,
    budget_ms: float | None = None,
) -> dict[int, TrialOutcome]:
    """Sweep the initialization length gamma for one algorithm (Figure 12).

    Args:
        setup_factory: Trial-setup factory.
        algorithm_for_gamma: Maps a gamma value to a fresh algorithm.
        gammas: Gamma values to test.
        num_trials: Trials per point.
        accuracy_weight: Scoring weight ``w1``.
        budget_ms: Optional budget — the Figure 12 effect (scores rise then
            fall with gamma) appears when time is constrained or when the
            video is short relative to the exploration cost.
    """
    scoring = WeightedLogScore(accuracy_weight=accuracy_weight)
    results: dict[int, TrialOutcome] = {}
    for gamma in gammas:
        outcome = compare_algorithms(
            setup_factory,
            {"algo": (lambda g=gamma: algorithm_for_gamma(g))},
            num_trials=num_trials,
            scoring=scoring,
            budget_ms=budget_ms,
        )
        results[gamma] = outcome["algo"]
    return results
