"""Plain-text reporting: aligned tables and normalization helpers.

The benchmark harness prints every reproduced table and figure as rows and
series on stdout; these helpers keep that output consistent and readable.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["safe_rate", "format_table", "normalize_by", "format_series"]


def safe_rate(numerator: float, denominator: float, default: float = 0.0) -> float:
    """``numerator / denominator``, or ``default`` when the denominator is 0.

    The repo-wide convention for aggregate rates (hit rates, per-frame
    means, coverage fractions) is that an empty denominator yields 0.0 —
    the same convention as :attr:`repro.engine.store.CacheStats.hit_rate` —
    rather than raising or reporting a vacuous 1.0.
    """
    if denominator == 0:
        return default
    return numerator / denominator


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render rows of dicts as an aligned text table.

    Args:
        rows: The data; each row is a column-name -> value mapping.
        columns: Column order; defaults to the first row's key order.
        precision: Decimal places for float cells.
        title: Optional heading line.
    """
    if not rows:
        return (title + "\n(empty)") if title else "(empty)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    header = [str(c) for c in cols]
    body = [
        [_format_cell(row.get(c, ""), precision) for c in cols] for row in rows
    ]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) for i in range(len(cols))
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths, strict=True)))
    lines.append("  ".join("-" * w for w in widths))
    for r in body:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(r, widths, strict=True)))
    return "\n".join(lines)


def normalize_by(
    values: Mapping[str, float], reference_key: str
) -> dict[str, float]:
    """Scale a metric mapping so that ``reference_key`` maps to 1.0.

    Used for Figure 8's "normalized by the score of MES" presentation.

    Raises:
        KeyError: If the reference key is missing.
        ValueError: If the reference value is zero.
    """
    if reference_key not in values:
        raise KeyError(f"reference key {reference_key!r} not in values")
    reference = values[reference_key]
    if reference == 0:
        raise ValueError("cannot normalize by a zero reference value")
    return {key: value / reference for key, value in values.items()}


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render one-x-many-y series (a figure's line chart) as a table."""
    rows: list[dict[str, object]] = []
    for i, x in enumerate(x_values):
        row: dict[str, object] = {x_label: x}
        for name, ys in series.items():
            row[name] = ys[i] if i < len(ys) else ""
        rows.append(row)
    return format_table(rows, precision=precision, title=title)
