"""Experiment orchestration: trials, multi-trial harness, sweeps, reports."""

from repro.runner.experiment import (
    TrialSetup,
    bdd_detector_suite,
    make_environment,
    nuscenes_detector_suite,
    run_algorithms,
    standard_setup,
)
from repro.runner.harness import MetricStats, TrialOutcome, compare_algorithms
from repro.runner.reporting import format_table, normalize_by
from repro.runner.sweeps import budget_sweep, gamma_sweep, weight_sweep

__all__ = [
    "MetricStats",
    "TrialOutcome",
    "TrialSetup",
    "bdd_detector_suite",
    "budget_sweep",
    "compare_algorithms",
    "format_table",
    "gamma_sweep",
    "make_environment",
    "normalize_by",
    "nuscenes_detector_suite",
    "run_algorithms",
    "standard_setup",
    "weight_sweep",
]
