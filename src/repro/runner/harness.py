"""Multi-trial comparison harness (the Section 5.4 protocol).

Every figure of the paper reports statistics over 100 independent trials
with re-sampled datasets.  :func:`compare_algorithms` runs that protocol:
per trial it re-samples the dataset and detector seeds, runs every
algorithm over the identical trial (with a shared evaluation cache), and
aggregates ``s_sum``, ``a_bar`` and ``1 - c_hat`` into mean / std / min /
max summaries — exactly the boxes-and-whiskers content of Figure 4.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.core.scoring import ScoringFunction
from repro.core.selection import SelectionAlgorithm, SelectionResult
from repro.engine.backends import ExecutionBackend
from repro.engine.store import EvaluationStore
from repro.obs import NULL_OBS, Observability
from repro.runner.experiment import TrialSetup, run_algorithms

__all__ = ["MetricStats", "TrialOutcome", "compare_algorithms"]


@dataclass(frozen=True)
class MetricStats:
    """Summary statistics of one metric across trials."""

    values: tuple

    @classmethod
    def from_values(cls, values: Sequence[float]) -> MetricStats:
        if not values:
            raise ValueError("MetricStats needs at least one value")
        return cls(values=tuple(float(v) for v in values))

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def std(self) -> float:
        if len(self.values) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(
            sum((v - mu) ** 2 for v in self.values) / (len(self.values) - 1)
        )

    @property
    def min(self) -> float:
        return min(self.values)

    @property
    def max(self) -> float:
        return max(self.values)

    def summary(self) -> dict[str, float]:
        return {
            "mean": self.mean,
            "std": self.std,
            "min": self.min,
            "max": self.max,
        }


@dataclass
class TrialOutcome:
    """All per-trial metrics for one algorithm."""

    algorithm: str
    s_sum: list[float] = field(default_factory=list)
    mean_ap: list[float] = field(default_factory=list)
    mean_cost: list[float] = field(default_factory=list)
    frames_processed: list[int] = field(default_factory=list)

    def add(self, result: SelectionResult) -> None:
        self.s_sum.append(result.s_sum)
        self.mean_ap.append(result.mean_true_ap)
        self.mean_cost.append(result.mean_normalized_cost)
        self.frames_processed.append(result.frames_processed)

    def stats(self, metric: str = "s_sum") -> MetricStats:
        """Summary statistics for one of the collected metrics.

        Args:
            metric: ``"s_sum"``, ``"mean_ap"``, ``"mean_cost"`` or
                ``"frames_processed"``.
        """
        values = getattr(self, metric, None)
        if values is None:
            raise KeyError(f"unknown metric {metric!r}")
        return MetricStats.from_values(values)


def compare_algorithms(
    setup_factory: Callable[[int], TrialSetup],
    algorithms: Mapping[str, Callable[[], SelectionAlgorithm]],
    num_trials: int = 10,
    scoring: ScoringFunction | None = None,
    budget_ms: float | None = None,
    cache_by_trial: dict[int, EvaluationStore] | None = None,
    backend: ExecutionBackend | None = None,
    billing: str = "sum",
    obs: Observability = NULL_OBS,
) -> dict[str, TrialOutcome]:
    """Run the multi-trial comparison protocol.

    Every per-algorithm run inside a trial drives the engine's single
    :class:`~repro.engine.pipeline.FramePipeline` loop through
    :func:`~repro.runner.experiment.run_algorithms`.

    Args:
        setup_factory: Maps a trial number to a (re-sampled) trial setup;
            typically ``lambda trial: standard_setup(dataset, trial=trial)``.
        algorithms: Name -> fresh-instance factory.
        num_trials: Number of independent trials (the paper uses 100).
        scoring: Shared scoring function.
        budget_ms: Optional TCVI budget.
        cache_by_trial: Optional per-trial evaluation stores, reused across
            calls (e.g. the budget points of a sweep re-run identical
            trials; sharing stores avoids re-inferring every frame).
        backend: Optional execution backend shared across all trials (the
            caller owns its lifecycle); wall clock only, results unchanged.
        billing: Detector billing policy for every run.
        obs: Observability facade shared by the whole comparison; per-trial
            and per-algorithm detail lives in labels/events, while the
            counters accumulate across the protocol.

    Returns:
        Name -> accumulated :class:`TrialOutcome`.
    """
    if num_trials < 1:
        raise ValueError("num_trials must be positive")
    outcomes: dict[str, TrialOutcome] = {
        name: TrialOutcome(algorithm=name) for name in algorithms
    }
    for trial in range(num_trials):
        setup = setup_factory(trial)
        cache = None
        if cache_by_trial is not None:
            cache = cache_by_trial.setdefault(trial, EvaluationStore(obs=obs))
        with obs.span("trial", trial=trial):
            results = run_algorithms(
                setup,
                algorithms,
                scoring=scoring,
                budget_ms=budget_ms,
                cache=cache,
                backend=backend,
                billing=billing,
                obs=obs,
            )
        obs.count(
            "repro_trials_total",
            description="Completed comparison trials",
        )
        for name, result in results.items():
            outcomes[name].add(result)
    return outcomes
