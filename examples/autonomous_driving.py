#!/usr/bin/env python
"""Autonomous-driving ingestion: a miniature Figure 4 comparison.

Reproduces the paper's motivating scenario end to end: a mixed-conditions
nuScenes-like dataset, five detectors of different architectures and
training domains (the m = 5 pool), the LiDAR reference, and all six
selection strategies compared over several independent trials.

Run:  python examples/autonomous_driving.py
"""

from repro import (
    BruteForce,
    ExploreFirst,
    MES,
    Oracle,
    RandomSelection,
    SingleBest,
    WeightedLogScore,
)
from repro.runner import compare_algorithms, format_table, standard_setup


def main() -> None:
    algorithms = {
        "OPT": Oracle,
        "BF": BruteForce,
        "SGL": SingleBest,
        "RAND": RandomSelection,
        "EF": ExploreFirst,
        "MES": MES,
    }
    outcomes = compare_algorithms(
        lambda trial: standard_setup(
            "nusc-night", trial=trial, scale=0.2, m=5, max_frames=1200
        ),
        algorithms,
        num_trials=3,
        scoring=WeightedLogScore(accuracy_weight=0.5),
    )

    rows = []
    opt_mean = outcomes["OPT"].stats("s_sum").mean
    for name, outcome in outcomes.items():
        stats = outcome.stats("s_sum")
        rows.append(
            {
                "algorithm": name,
                "s_sum mean": stats.mean,
                "pct of OPT": 100.0 * stats.mean / opt_mean,
                "std": stats.std,
                "min": stats.min,
                "max": stats.max,
                "mean AP": outcome.stats("mean_ap").mean,
                "1 - c_hat": 1.0 - outcome.stats("mean_cost").mean,
            }
        )
    print(
        format_table(
            rows,
            precision=2,
            title="nusc-night, m=5, w1=w2=0.5, 3 trials (Figure 4 shape)",
        )
    )
    print(
        "\nExpected shape: OPT highest; MES clearly above SGL/RAND/BF and "
        "at EF's level on the mean with a several-times tighter min-max "
        "band (EF's committed arm is a per-trial lottery).  MES's share of "
        "OPT keeps growing with the horizon — see EXPERIMENTS.md Figure 4."
    )


if __name__ == "__main__":
    main()
