#!/usr/bin/env python
"""Compare box-fusion methods (the paper's Section 5.2 model selection).

Runs every registered fusion method — NMS, Soft-NMS, Softer-NMS, WBF, NMW
and consensus Fusion — over the same detector outputs and measures the
COCO-style mAP@[.5:.95] of the fused results (strict localization
thresholds are where coordinate-averaging methods differentiate),
reproducing the paper's finding that WBF produces the most accurate
ensembled outputs.

Run:  python examples/fusion_comparison.py
"""

from repro.detection.metrics import coco_map
from repro.ensembling import available_methods, create_method
from repro.runner import standard_setup


def main() -> None:
    setup = standard_setup("nusc", trial=0, scale=0.02, m=3, max_frames=300)
    print(
        f"{len(setup.frames)} mixed-conditions frames, "
        f"detectors: {[d.name for d in setup.detectors]}\n"
    )

    # Materialize per-detector outputs once; every fusion method sees the
    # same inputs.
    per_frame_outputs = [
        [detector.detect(frame).detections for detector in setup.detectors]
        for frame in setup.frames
    ]

    scores = {}
    for name in available_methods():
        method = create_method(name)
        total_ap = 0.0
        for frame, outputs in zip(setup.frames, per_frame_outputs, strict=True):
            fused = method.fuse(outputs)
            total_ap += coco_map(fused, frame.ground_truth_detections())
        scores[name] = total_ap / len(setup.frames)

    # Single best model as the no-ensembling baseline.
    best_single = 0.0
    for i, detector in enumerate(setup.detectors):
        total_ap = sum(
            coco_map(outputs[i], frame.ground_truth_detections())
            for frame, outputs in zip(setup.frames, per_frame_outputs, strict=True)
        )
        best_single = max(best_single, total_ap / len(setup.frames))

    print(f"{'method':12s} mAP@[.5:.95] (full 3-model ensemble)")
    print("-" * 40)
    for name, ap in sorted(scores.items(), key=lambda kv: -kv[1]):
        print(f"{name:12s} {ap:.4f}")
    print("-" * 40)
    print(f"{'best single':12s} {best_single:.4f}")
    winner = max(scores, key=scores.get)
    print(
        f"\n{winner.upper()} wins, as in the paper (Section 5.2 adopts WBF)."
    )


if __name__ == "__main__":
    main()
