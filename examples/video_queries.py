#!/usr/bin/env python
"""Video query processing: the SQL-ish interface from the paper's intro.

Registers a video, detectors and the LiDAR reference with a QueryEngine
and runs declarative queries whose PROCESS clause performs MES ensemble
selection as the pre-processing step — the exact query shape the paper's
Section 1 motivates.

Run:  python examples/video_queries.py
"""

from repro.query import QueryEngine
from repro.runner import standard_setup


def main() -> None:
    setup = standard_setup("nusc-clear", trial=0, scale=0.1, m=3, max_frames=400)
    engine = QueryEngine()
    engine.register_video("inputVideo", setup.frames)
    for detector in setup.detectors:
        engine.register_detector(detector)
    engine.register_reference(setup.reference)

    print("catalog:")
    print(f"  videos:     {engine.videos}")
    print(f"  detectors:  {engine.detectors}")
    print(f"  references: {engine.references}\n")

    queries = {
        "busy frames (3+ confident cars)": """
            SELECT frameID
            FROM (PROCESS inputVideo PRODUCE frameID, Detections
                  USING MES(yolov7-tiny-clear, yolov7-tiny-night,
                            yolov7-tiny-rainy; lidar-ref)
                  WITH gamma=5)
            WHERE COUNT('car', conf > 0.4) >= 3
        """,
        "pedestrian near traffic, no bus": """
            SELECT frameID
            FROM (PROCESS inputVideo PRODUCE frameID, Detections
                  USING MES(yolov7-tiny-clear, yolov7-tiny-night,
                            yolov7-tiny-rainy; lidar-ref)
                  WITH gamma=5)
            WHERE EXISTS('pedestrian', conf > 0.3)
              AND COUNT('car') >= 1
              AND NOT EXISTS('bus')
        """,
        "early window, budgeted MES-B": """
            SELECT frameID
            FROM (PROCESS inputVideo PRODUCE frameID, Detections
                  USING MES-B(yolov7-tiny-clear, yolov7-tiny-night,
                              yolov7-tiny-rainy; lidar-ref)
                  WITH budget=5000, gamma=5)
            WHERE frameID < 100 AND COUNT(*) >= 4
        """,
    }

    for title, text in queries.items():
        result = engine.execute(text)
        ids = result.frame_ids()
        preview = ", ".join(map(str, ids[:12])) + (" ..." if len(ids) > 12 else "")
        print(f"{title}:")
        print(
            f"  {len(result)} of {result.selection.frames_processed} "
            f"processed frames match -> [{preview}]"
        )
        counts = result.selection.selection_counts()
        top = max(counts, key=counts.get)
        print(f"  most-used ensemble: {{{' + '.join(top)}}}\n")


if __name__ == "__main__":
    main()
