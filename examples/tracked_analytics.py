#!/usr/bin/env python
"""Tracked video analytics: MES-selected detections feeding an IoU tracker.

The full pre-processing pipeline a video query system runs: per frame,
MES selects and fuses a detector ensemble; the fused boxes feed a
SORT-style tracker; downstream analytics consume stable object identities
(here: per-class object counts and dwell times).

Run:  python examples/tracked_analytics.py
"""

from collections import Counter, defaultdict

from repro import MES, WeightedLogScore
from repro.runner import make_environment, standard_setup
from repro.tracking import IoUTracker, evaluate_tracking


def main() -> None:
    setup = standard_setup("nusc-clear", trial=0, scale=0.1, m=3, max_frames=300)
    env = make_environment(setup, scoring=WeightedLogScore(0.5))

    # Phase 1: MES selects an ensemble per frame (the paper's contribution).
    result = MES(gamma=5).run(env, setup.frames)

    # Phase 2: the selected ensemble's fused detections feed the tracker.
    tracker = IoUTracker(min_hits=2, max_age=3)
    outputs = []
    for record in result.records:
        frame = setup.frames[record.frame_index]
        detections = env.evaluate(
            frame, [record.selected], charge=False
        ).evaluations[record.selected].detections
        outputs.append(tracker.update(detections))

    # Phase 3: identity-level analytics.
    dwell = defaultdict(int)
    labels = {}
    for tracks in outputs:
        for track in tracks:
            dwell[track.track_id] += 1
            labels[track.track_id] = track.label

    by_class = Counter(labels.values())
    print(f"{len(dwell)} confirmed tracks over {len(setup.frames)} frames")
    print("tracks per class:", dict(by_class))
    longest = sorted(dwell.items(), key=lambda kv: -kv[1])[:5]
    print("longest dwell times (frames):")
    for track_id, frames_seen in longest:
        print(f"  track {track_id:4d} ({labels[track_id]:12s}) {frames_seen}")

    quality = evaluate_tracking(list(setup.frames), outputs)
    print(
        f"\ntracking quality vs ground truth: coverage={quality.coverage:.2f} "
        f"precision={quality.precision:.2f} "
        f"id-switches={quality.identity_switches} "
        f"fragmentation={quality.fragmentation:.2f}"
    )


if __name__ == "__main__":
    main()
