#!/usr/bin/env python
"""Quickstart: select detector ensembles for a short night-driving video.

Builds a synthetic nuScenes-like night video, a pool of three YOLOv7-tiny
detectors specialized on different domains, and a LiDAR reference model,
then runs MES and prints what it selected and how it compares to always
using the full ensemble.

Run:  python examples/quickstart.py
"""

from repro import BruteForce, MES, WeightedLogScore
from repro.runner import make_environment, standard_setup


def main() -> None:
    # A 300-frame night video plus the m=3 detector pool (the paper's
    # Yolo-C / Yolo-N / Yolo-R trio) and a simulated LiDAR REF.
    setup = standard_setup("nusc-night", trial=0, scale=0.1, m=3, max_frames=300)
    scoring = WeightedLogScore(accuracy_weight=0.5)

    print(f"video: {len(setup.frames)} frames of {setup.label}")
    print(f"detectors: {[d.name for d in setup.detectors]}")
    print(f"reference: {setup.reference.name}\n")

    env = make_environment(setup, scoring=scoring)
    result = MES(gamma=5).run(env, setup.frames)

    print(f"MES   s_sum={result.s_sum:8.2f}  "
          f"mean AP={result.mean_true_ap:.3f}  "
          f"mean normalized cost={result.mean_normalized_cost:.3f}")

    counts = sorted(
        result.selection_counts().items(), key=lambda kv: -kv[1]
    )
    print("\nmost-selected ensembles:")
    for key, count in counts[:5]:
        members = " + ".join(name.split("-")[-1] for name in key)
        print(f"  {count:4d}x  {{{members}}}")

    # Contrast with brute force (always all three models).
    env_bf = make_environment(setup, scoring=scoring, cache=env.cache)
    bf = BruteForce().run(env_bf, setup.frames)
    print(f"\nBF    s_sum={bf.s_sum:8.2f}  "
          f"mean AP={bf.mean_true_ap:.3f}  "
          f"mean normalized cost={bf.mean_normalized_cost:.3f}")
    print(f"\nMES improves the aggregate score by "
          f"{(result.s_sum / bf.s_sum - 1) * 100:.1f}% over brute force.")


if __name__ == "__main__":
    main()
