#!/usr/bin/env python
"""Fault tolerance: run MES over a pool with an unreliable detector.

Injects the ``flaky-first`` fault profile (the first detector raises
transient errors and spikes its latency) and a sustained outage, executes
MES through the resilient backend — retry with exponential backoff, a
per-detector circuit breaker, simulated-latency timeouts — and shows how
the run degrades gracefully instead of aborting: frames fall back to the
healthy subset, the breaker masks the dead arm, and the score stays close
to the fault-free baseline.

Run:  python examples/unreliable_detectors.py
"""

from repro import MES, WeightedLogScore
from repro.engine.backends import SerialBackend
from repro.engine.resilience import BreakerPolicy, ResilientBackend, RetryPolicy
from repro.runner import make_environment, standard_setup


def run_profile(profile: str):
    setup = standard_setup(
        "nusc-night", trial=0, scale=0.05, m=3, max_frames=200,
        fault_profile=profile,
    )
    backend = None
    if profile != "none":
        backend = ResilientBackend(
            SerialBackend(),
            retry=RetryPolicy(max_attempts=3, backoff_base_ms=10.0, seed=7),
            breaker=BreakerPolicy(failure_threshold=3, cooldown_batches=5),
            timeout_ms=2_000.0,
        )
    env = make_environment(
        setup, scoring=WeightedLogScore(accuracy_weight=0.5), backend=backend
    )
    result = MES(gamma=5).run(env, setup.frames)
    return setup, env, result


def main() -> None:
    clean_setup, _, clean = run_profile("none")
    print(f"video: {len(clean_setup.frames)} frames of {clean_setup.label}")
    print(f"fault-free MES: s_sum={clean.s_sum:.2f}, "
          f"{clean.frames_processed} frames processed\n")

    for profile in ("flaky-first", "outage-first"):
        _, env, result = run_profile(profile)
        stats = env.fault_stats()
        retention = result.s_sum / clean.s_sum
        print(f"profile {profile!r}:")
        print(f"  s_sum={result.s_sum:.2f} "
              f"({retention:.0%} of fault-free)")
        print(f"  frames processed={result.frames_processed}, "
              f"degraded={result.frames_degraded}")
        print(f"  attempts={stats.attempts}  failures={stats.failures}  "
              f"retries={stats.retries}  recoveries={stats.recoveries}")
        print(f"  breaker: opened {stats.breaker_opens}x, "
              f"skipped {stats.breaker_skips} jobs")
        degraded = [r for r in result.records if r.degraded]
        if degraded:
            r = degraded[0]
            print(f"  e.g. frame {r.frame_index}: selected "
                  f"{'+'.join(n.split('-')[-1] for n in r.selected)} "
                  f"-> realized "
                  f"{'+'.join(n.split('-')[-1] for n in r.realized_key)}")
        print()

    print("No run aborted: failed members drop out per frame, the breaker")
    print("masks dead arms from the bandit, and billing covers only the")
    print("inference that actually happened.")


if __name__ == "__main__":
    main()
