#!/usr/bin/env python
"""Surveillance stream with concept drift: SW-MES vs MES (TUVI-CD).

Simulates a monitoring feed whose conditions switch abruptly between
clear and night segments (the paper's V_c&n construction: each source is
cut into segments which are shuffled together).  SW-MES forgets
observations older than its window and re-converges after every
breakpoint; MES relies on its subset-piggyback-refreshed statistics.
Both track the regime-matched specialist far better than any static
baseline (see EXPERIMENTS.md's Figure 7 discussion for how they compare
to each other at different horizons).

Run:  python examples/surveillance_drift.py
"""

from repro import MES, Oracle, SWMES, WeightedLogScore, compose_drifting_video
from repro.core.environment import DetectionEnvironment, EvaluationStore
from repro.core.sw_mes import suggested_window
from repro.simulation.detectors import SimulatedDetector
from repro.simulation.lidar import SimulatedLidar
from repro.simulation.profiles import make_profile
from repro.simulation.world import generate_video


def main() -> None:
    clear = generate_video("surv/clear", 2500, "clear", seed=11)
    night = generate_video("surv/night", 2500, "night", seed=12)
    stream = compose_drifting_video(
        "surv/c&n", [clear, night], num_segments=8, seed=7
    )
    print(
        f"stream: {len(stream)} frames, {stream.num_breakpoints} abrupt "
        f"drifts at {list(stream.breakpoints)[:6]}..."
    )

    pool = [
        SimulatedDetector(make_profile("yolov7-tiny", "clear"), seed=1),
        SimulatedDetector(make_profile("yolov7-tiny", "night"), seed=2),
        SimulatedDetector(make_profile("yolov7-tiny", "rainy"), seed=3),
    ]
    lidar = SimulatedLidar(seed=42)
    scoring = WeightedLogScore(accuracy_weight=0.5)
    cache = EvaluationStore()

    def run(algorithm):
        env = DetectionEnvironment(pool, lidar, scoring=scoring, cache=cache)
        return algorithm.run(env, stream.frames)

    opt = run(Oracle())
    mes = run(MES(gamma=5))
    window = max(
        suggested_window(len(stream), stream.num_breakpoints), 10 * len(stream) // 50
    )
    sw = run(SWMES(window=window, gamma=5))

    print(f"\nwindow lambda = {window}")
    for name, result in (("OPT", opt), ("MES", mes), ("SW-MES", sw)):
        print(
            f"{name:7s} s_sum={result.s_sum:9.2f} "
            f"({result.s_sum / opt.s_sum * 100:5.1f}% of OPT)  "
            f"mean AP={result.mean_true_ap:.3f}"
        )

    # Show how often each algorithm picked the regime-matched specialist.
    def regime_match_rate(result):
        matches = 0
        for record in result.records:
            frame = stream[record.frame_index]
            specialist = f"yolov7-tiny-{frame.category.name}"
            if specialist in record.selected:
                matches += 1
        return matches / len(result.records)

    print(
        f"\nregime-matched specialist in selection: "
        f"MES {regime_match_rate(mes) * 100:.0f}%  "
        f"SW-MES {regime_match_rate(sw) * 100:.0f}%"
    )


if __name__ == "__main__":
    main()
