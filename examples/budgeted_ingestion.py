#!/usr/bin/env python
"""Budget-constrained ingestion (TCVI): MES-B and LRBP budget prediction.

A video archive must be annotated within a fixed compute budget.  MES-B
selects ensembles frame by frame until the budget is exhausted; LRBP then
fits the observed (iteration, cumulative cost) line and predicts how much
extra budget finishing the archive would take — the paper's Table 4
workflow.

Run:  python examples/budgeted_ingestion.py
"""

from repro import LRBP, MESB, WeightedLogScore
from repro.core.environment import EvaluationStore
from repro.runner import make_environment, standard_setup


def main() -> None:
    setup = standard_setup("nusc-rainy", trial=0, scale=0.15, m=3, max_frames=1500)
    scoring = WeightedLogScore(accuracy_weight=0.5)
    cache = EvaluationStore()
    total_frames = len(setup.frames)
    gamma = 5

    budget_ms = 12_000.0
    env = make_environment(setup, scoring=scoring, cache=cache)
    partial = MESB(gamma=gamma).run(env, setup.frames, budget_ms=budget_ms)
    print(
        f"budget B = {budget_ms:.0f} ms processed |V_B| = "
        f"{partial.frames_processed} of |V| = {total_frames} frames "
        f"(s_sum = {partial.s_sum:.1f})"
    )

    # LRBP: fit the cumulative-cost line (skipping the expensive
    # initialization prefix) and predict the extra budget.
    model = LRBP.from_result(partial, skip_initialization=gamma)
    predicted = model.predict_extra_budget(partial.frames_processed, total_frames)
    print(
        f"LRBP fit: {model.slope:.2f} ms/frame over "
        f"{model.num_points} points"
    )
    print(f"predicted extra budget B_lrbp  = {predicted:9.0f} ms")

    # Ground truth: run the same strategy to completion and measure what
    # the remaining frames actually cost.
    env_full = make_environment(setup, scoring=scoring, cache=cache)
    full = MESB(gamma=gamma).run(env_full, setup.frames, budget_ms=1e12)
    actual = sum(
        record.charged_ms
        for record in full.records[partial.frames_processed :]
    )
    print(f"actual extra budget   B_extra  = {actual:9.0f} ms")
    error = abs(predicted - actual) / actual * 100
    print(f"prediction error: {error:.1f}%  (paper reports ~10% or less)")


if __name__ == "__main__":
    main()
