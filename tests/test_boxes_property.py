"""Property-based tests (hypothesis) for the box algebra."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection.boxes import BBox, average_boxes, iou_matrix

coords = st.floats(
    min_value=-1000.0, max_value=1000.0, allow_nan=False, allow_infinity=False
)
sizes = st.floats(min_value=0.0, max_value=500.0, allow_nan=False)


@st.composite
def bboxes(draw):
    x1 = draw(coords)
    y1 = draw(coords)
    w = draw(sizes)
    h = draw(sizes)
    return BBox(x1, y1, x1 + w, y1 + h)


@given(bboxes(), bboxes())
def test_iou_symmetric(a, b):
    assert math.isclose(a.iou(b), b.iou(a), abs_tol=1e-12)


@given(bboxes(), bboxes())
def test_iou_in_unit_interval(a, b):
    value = a.iou(b)
    assert 0.0 <= value <= 1.0


@given(bboxes())
def test_iou_self_is_one_for_positive_area(box):
    if box.area > 0:
        assert math.isclose(box.iou(box), 1.0)
    else:
        assert box.iou(box) == 0.0


@given(bboxes(), bboxes())
def test_intersection_bounded_by_min_area(a, b):
    inter = a.intersection(b)
    assert inter <= min(a.area, b.area) + 1e-9
    assert inter >= 0.0


@given(bboxes(), bboxes())
def test_enclosing_contains_both(a, b):
    hull = a.enclosing(b)
    assert hull.contains_box(a)
    assert hull.contains_box(b)


@given(bboxes(), st.floats(min_value=-100, max_value=100), st.floats(min_value=-100, max_value=100))
def test_translate_preserves_area(box, dx, dy):
    moved = box.translate(dx, dy)
    assert math.isclose(moved.area, box.area, rel_tol=1e-9, abs_tol=1e-9)


@given(bboxes(), st.floats(min_value=0.1, max_value=10.0))
def test_scale_area_quadratic(box, factor):
    scaled = box.scale(factor)
    assert math.isclose(
        scaled.area, box.area * factor * factor, rel_tol=1e-6, abs_tol=1e-6
    )


@given(bboxes(), st.floats(min_value=1.0, max_value=2000.0), st.floats(min_value=1.0, max_value=2000.0))
def test_clip_stays_within_frame(box, width, height):
    clipped = box.clip(width, height)
    assert 0.0 <= clipped.x1 <= clipped.x2 <= width
    assert 0.0 <= clipped.y1 <= clipped.y2 <= height


@given(st.lists(bboxes(), min_size=1, max_size=8))
def test_average_boxes_within_hull(boxes):
    avg = average_boxes(boxes)
    hull = boxes[0]
    for box in boxes[1:]:
        hull = hull.enclosing(box)
    assert hull.x1 - 1e-6 <= avg.x1 and avg.x2 <= hull.x2 + 1e-6
    assert hull.y1 - 1e-6 <= avg.y1 and avg.y2 <= hull.y2 + 1e-6


@given(st.lists(bboxes(), min_size=1, max_size=6), st.lists(bboxes(), min_size=1, max_size=6))
@settings(max_examples=50)
def test_iou_matrix_consistent_with_scalar(a, b):
    matrix = iou_matrix(a, b)
    assert matrix.shape == (len(a), len(b))
    for i in range(len(a)):
        for j in range(len(b)):
            assert math.isclose(matrix[i, j], a[i].iou(b[j]), abs_tol=1e-9)
