"""Unit tests for similarity-based frame skipping."""

import pytest

from repro.core.baselines import BruteForce
from repro.core.mes import MES
from repro.core.skipping import DIFF_DETECTOR_MS, FrameSkipper, frame_similarity
from repro.detection.boxes import BBox
from repro.simulation.video import Frame, GroundTruthObject


def make_frame(index, boxes, category, video_name="skip-test"):
    objects = tuple(
        GroundTruthObject(i, box, "car", 10.0, 0.9)
        for i, box in enumerate(boxes)
    )
    return Frame(index, category, objects, video_name=video_name)


class TestFrameSimilarity:
    def test_identical_frames(self, clear_category):
        frame = make_frame(0, [BBox(0, 0, 100, 100)], clear_category)
        other = make_frame(1, [BBox(0, 0, 100, 100)], clear_category)
        assert frame_similarity(frame, other) == pytest.approx(1.0)

    def test_both_empty(self, clear_category):
        a = make_frame(0, [], clear_category)
        b = make_frame(1, [], clear_category)
        assert frame_similarity(a, b) == 1.0

    def test_empty_vs_nonempty(self, clear_category):
        a = make_frame(0, [], clear_category)
        b = make_frame(1, [BBox(0, 0, 10, 10)], clear_category)
        assert frame_similarity(a, b) == 0.0

    def test_small_motion_high_similarity(self, clear_category):
        a = make_frame(0, [BBox(100, 100, 300, 300)], clear_category)
        b = make_frame(1, [BBox(105, 100, 305, 300)], clear_category)
        assert frame_similarity(a, b) > 0.9

    def test_large_motion_low_similarity(self, clear_category):
        a = make_frame(0, [BBox(100, 100, 200, 200)], clear_category)
        b = make_frame(1, [BBox(900, 600, 1000, 700)], clear_category)
        assert frame_similarity(a, b) == 0.0

    def test_object_count_change_reduces_similarity(self, clear_category):
        one = make_frame(0, [BBox(0, 0, 100, 100)], clear_category)
        two = make_frame(
            1, [BBox(0, 0, 100, 100), BBox(500, 500, 600, 600)], clear_category
        )
        assert frame_similarity(one, two) < frame_similarity(one, one)

    def test_symmetry(self, clear_category):
        a = make_frame(0, [BBox(0, 0, 120, 90)], clear_category)
        b = make_frame(1, [BBox(30, 10, 140, 95)], clear_category)
        assert frame_similarity(a, b) == pytest.approx(frame_similarity(b, a))


class TestFrameSkipper:
    def _static_frames(self, clear_category, n=12):
        """Frames whose single object never moves (maximally skippable)."""
        return [
            make_frame(i, [BBox(100, 100, 400, 300)], clear_category)
            for i in range(n)
        ]

    def test_covers_all_frames(self, environment, clear_category):
        frames = self._static_frames(clear_category)
        result = FrameSkipper(MES(gamma=2)).run(environment, frames)
        assert result.frames_processed == len(frames)
        assert [r.frame_index for r in result.records] == list(range(len(frames)))

    def test_skipped_frames_cost_almost_nothing(self, environment, clear_category):
        frames = self._static_frames(clear_category)
        result = FrameSkipper(
            BruteForce(), similarity_threshold=0.8, max_consecutive_skips=3
        ).run(environment, frames)
        skipped = [r for r in result.records if r.charged_ms <= DIFF_DETECTOR_MS]
        processed = [r for r in result.records if r.charged_ms > DIFF_DETECTOR_MS]
        assert skipped, "static scene must produce skips"
        assert processed, "max_consecutive_skips must force re-processing"
        for record in skipped:
            assert record.cost_ms == DIFF_DETECTOR_MS

    def test_max_consecutive_skips_enforced(self, environment, clear_category):
        frames = self._static_frames(clear_category, n=20)
        result = FrameSkipper(
            BruteForce(), similarity_threshold=0.5, max_consecutive_skips=2
        ).run(environment, frames)
        consecutive = 0
        for record in result.records:
            if record.charged_ms <= DIFF_DETECTOR_MS:
                consecutive += 1
                assert consecutive <= 2
            else:
                consecutive = 0

    def test_cheaper_than_unskipped_on_static_video(
        self, detector_pool, lidar, clear_category
    ):
        from repro.core.environment import DetectionEnvironment, EvaluationStore

        frames = self._static_frames(clear_category, n=16)
        cache = EvaluationStore()
        env_plain = DetectionEnvironment(detector_pool, lidar, cache=cache)
        plain = BruteForce().run(env_plain, frames)
        env_skip = DetectionEnvironment(detector_pool, lidar, cache=cache)
        skipped = FrameSkipper(BruteForce()).run(env_skip, frames)
        assert skipped.total_charged_ms < plain.total_charged_ms * 0.7
        # Reused detections on a static scene barely lose accuracy.
        assert skipped.mean_true_ap > plain.mean_true_ap * 0.9

    def test_dynamic_video_rarely_skips(self, environment, small_video):
        result = FrameSkipper(
            MES(gamma=2), similarity_threshold=0.95
        ).run(environment, small_video.frames)
        skipped = sum(
            1 for r in result.records if r.charged_ms <= DIFF_DETECTOR_MS
        )
        # Generated driving scenes move; near-exact similarity is rare.
        assert skipped < len(small_video) * 0.5

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FrameSkipper(MES(), similarity_threshold=0.0)
        with pytest.raises(ValueError):
            FrameSkipper(MES(), max_consecutive_skips=0)

    def test_name_wraps_inner(self):
        assert FrameSkipper(MES()).name == "skip(MES)"

    def test_requires_iterative_algorithm(self, environment, small_video):
        class NotIterative:
            name = "X"

        skipper = FrameSkipper.__new__(FrameSkipper)
        skipper.inner = NotIterative()
        skipper.similarity_threshold = 0.8
        skipper.max_consecutive_skips = 2
        with pytest.raises(TypeError):
            skipper.run(environment, small_video.frames)
