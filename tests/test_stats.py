"""Unit tests for bandit statistics (cumulative, windowed, discounted)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import (
    DiscountedStatistics,
    EnsembleStatistics,
    SlidingWindowStatistics,
)

KEY_A = ("a",)
KEY_B = ("b",)


class TestEnsembleStatistics:
    def test_initial_state(self):
        stats = EnsembleStatistics()
        assert stats.count(KEY_A) == 0
        assert stats.mean(KEY_A) == 0.0
        assert stats.exploration_bonus(KEY_A, 10) == math.inf

    def test_running_mean(self):
        stats = EnsembleStatistics()
        for reward in (0.2, 0.4, 0.9):
            stats.record(KEY_A, reward)
        assert stats.count(KEY_A) == 3
        assert stats.mean(KEY_A) == pytest.approx(0.5)

    def test_bonus_formula(self):
        stats = EnsembleStatistics()
        stats.record(KEY_A, 0.5)
        stats.record(KEY_A, 0.5)
        assert stats.exploration_bonus(KEY_A, 100) == pytest.approx(
            math.sqrt(2 * math.log(100) / 2)
        )

    def test_bonus_decreases_with_count(self):
        stats = EnsembleStatistics()
        stats.record(KEY_A, 0.5)
        b1 = stats.exploration_bonus(KEY_A, 50)
        stats.record(KEY_A, 0.5)
        assert stats.exploration_bonus(KEY_A, 50) < b1

    def test_ucb_prefers_unexplored(self):
        stats = EnsembleStatistics()
        stats.record(KEY_A, 0.99)
        assert stats.ucb(KEY_B, 10) > stats.ucb(KEY_A, 10)

    def test_observed_keys(self):
        stats = EnsembleStatistics()
        stats.record(KEY_B, 0.1)
        stats.record(KEY_A, 0.2)
        assert stats.observed_keys() == [KEY_A, KEY_B]

    @given(st.lists(st.floats(min_value=0, max_value=1), min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_mean_matches_arithmetic_mean(self, rewards):
        stats = EnsembleStatistics()
        for r in rewards:
            stats.record(KEY_A, r)
        assert stats.mean(KEY_A) == pytest.approx(sum(rewards) / len(rewards))


class TestSlidingWindowStatistics:
    def test_window_forgets_old_observations(self):
        stats = SlidingWindowStatistics(window=3)
        stats.record(KEY_A, 1.0, iteration=1)
        stats.record(KEY_A, 0.0, iteration=4)
        # At iteration 5, the iteration-1 observation (age 4 > 3) is gone.
        assert stats.count(KEY_A, now=5) == 1
        assert stats.mean(KEY_A, now=5) == 0.0

    def test_observations_within_window_kept(self):
        stats = SlidingWindowStatistics(window=5)
        stats.record(KEY_A, 1.0, iteration=1)
        stats.record(KEY_A, 0.5, iteration=3)
        assert stats.count(KEY_A, now=5) == 2
        assert stats.mean(KEY_A, now=5) == pytest.approx(0.75)

    def test_empty_window_zero_mean_infinite_bonus(self):
        stats = SlidingWindowStatistics(window=2)
        stats.record(KEY_A, 1.0, iteration=1)
        assert stats.mean(KEY_A, now=100) == 0.0
        assert stats.exploration_bonus(KEY_A, 100) == math.inf

    def test_bonus_uses_min_of_t_and_window(self):
        stats = SlidingWindowStatistics(window=10)
        stats.record(KEY_A, 0.5, iteration=99)
        stats.record(KEY_A, 0.5, iteration=100)
        expected = math.sqrt(2 * math.log(10) / 2)
        assert stats.exploration_bonus(KEY_A, 100) == pytest.approx(expected)

    def test_out_of_order_iterations_rejected(self):
        stats = SlidingWindowStatistics(window=3)
        stats.record(KEY_A, 0.5, iteration=5)
        with pytest.raises(ValueError):
            stats.record(KEY_A, 0.5, iteration=4)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SlidingWindowStatistics(window=0)

    def test_recovery_after_drift(self):
        """The windowed mean tracks the recent regime, not the history."""
        stats = SlidingWindowStatistics(window=10)
        for t in range(1, 51):
            stats.record(KEY_A, 0.9, iteration=t)
        for t in range(51, 101):
            stats.record(KEY_A, 0.1, iteration=t)
        assert stats.mean(KEY_A, now=100) == pytest.approx(0.1)


class TestDiscountedStatistics:
    def test_record_and_mean(self):
        stats = DiscountedStatistics(discount=0.9)
        stats.record(KEY_A, 0.8)
        assert stats.mean(KEY_A) == pytest.approx(0.8)

    def test_decay_prefers_recent(self):
        stats = DiscountedStatistics(discount=0.5)
        stats.record(KEY_A, 1.0)
        for _ in range(5):
            stats.advance()
        stats.record(KEY_A, 0.0)
        # Old observation decayed to weight 1/32: mean close to 0.
        assert stats.mean(KEY_A) < 0.1

    def test_unobserved_bonus_infinite(self):
        stats = DiscountedStatistics()
        assert stats.exploration_bonus(KEY_A) == math.inf

    def test_discount_one_recovers_plain_mean(self):
        plain = EnsembleStatistics()
        discounted = DiscountedStatistics(discount=1.0)
        for r in (0.2, 0.6, 0.7):
            plain.record(KEY_A, r)
            discounted.advance()
            discounted.record(KEY_A, r)
        assert discounted.mean(KEY_A) == pytest.approx(plain.mean(KEY_A))

    def test_invalid_discount(self):
        with pytest.raises(ValueError):
            DiscountedStatistics(discount=0.0)
        with pytest.raises(ValueError):
            DiscountedStatistics(discount=1.5)
