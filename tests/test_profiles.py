"""Unit tests for the model zoo and detector profiles."""

import pytest

from repro.simulation.profiles import ARCHITECTURES, TRANSFER_MATRIX, make_profile


class TestArchitectures:
    def test_table3_membership(self):
        for name in ("yolov7", "yolov7-tiny", "yolov7-micro", "faster-rcnn"):
            assert name in ARCHITECTURES

    def test_table3_parameters(self):
        # Parameter counts and times straight from the paper's Table 3.
        assert ARCHITECTURES["yolov7"].num_params_millions == 37.2
        assert ARCHITECTURES["yolov7"].base_time_ms == 49.5
        assert ARCHITECTURES["yolov7-tiny"].num_params_millions == 6.03
        assert ARCHITECTURES["yolov7-tiny"].base_time_ms == 10.0
        assert ARCHITECTURES["yolov7-micro"].num_params_millions == 2.68
        assert ARCHITECTURES["yolov7-micro"].base_time_ms == 7.7
        assert ARCHITECTURES["faster-rcnn"].num_params_millions == 42.1
        assert ARCHITECTURES["faster-rcnn"].base_time_ms == 212.0

    def test_accuracy_ordering(self):
        # Section 5.2: YOLOv7 > YOLOv7-tiny > YOLOv7-micro > Faster R-CNN.
        skills = [
            ARCHITECTURES[n].base_skill
            for n in ("yolov7", "yolov7-tiny", "yolov7-micro", "faster-rcnn")
        ]
        assert skills == sorted(skills, reverse=True)


class TestTransferMatrix:
    def test_diagonal_is_one(self):
        for domain, row in TRANSFER_MATRIX.items():
            if domain in row:
                assert row[domain] == 1.0

    def test_all_multipliers_in_unit_interval(self):
        for row in TRANSFER_MATRIX.values():
            for value in row.values():
                assert 0.0 < value <= 1.0

    def test_night_transfer_is_hardest_from_clear(self):
        row = TRANSFER_MATRIX["clear"]
        assert row["night"] == min(row.values())


class TestDetectorProfile:
    def test_make_profile_default_name(self):
        profile = make_profile("yolov7-tiny", "rainy")
        assert profile.name == "yolov7-tiny-rainy"

    def test_make_profile_custom_name(self):
        profile = make_profile("yolov7-tiny", "rainy", name="Yolo-R")
        assert profile.name == "Yolo-R"

    def test_unknown_architecture(self):
        with pytest.raises(KeyError):
            make_profile("yolov99", "clear")

    def test_unknown_domain(self):
        with pytest.raises(ValueError):
            make_profile("yolov7", "desert")

    def test_skill_on_in_domain_equals_base(self):
        profile = make_profile("yolov7-tiny", "night")
        assert profile.skill_on("night") == ARCHITECTURES["yolov7-tiny"].base_skill

    def test_skill_on_out_of_domain_lower(self):
        profile = make_profile("yolov7-tiny", "clear")
        assert profile.skill_on("night") < profile.skill_on("clear")

    def test_specialist_beats_generalist_in_domain(self):
        specialist = make_profile("yolov7-tiny", "rainy")
        generalist = make_profile("yolov7-tiny", "all")
        assert specialist.skill_on("rainy") > generalist.skill_on("rainy")

    def test_generalist_beats_specialist_out_of_domain(self):
        specialist = make_profile("yolov7-tiny", "clear")
        generalist = make_profile("yolov7-tiny", "all")
        assert generalist.skill_on("night") > specialist.skill_on("night")

    def test_unknown_category_uses_weakest_transfer(self):
        profile = make_profile("yolov7-tiny", "clear")
        weakest = min(TRANSFER_MATRIX["clear"].values())
        expected = ARCHITECTURES["yolov7-tiny"].base_skill * weakest
        assert profile.skill_on("fog") == pytest.approx(expected)
