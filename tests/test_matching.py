"""Unit tests for greedy IoU matching."""

import pytest

from repro.detection.boxes import BBox
from repro.detection.matching import match_detections
from repro.detection.types import Detection


def det(x1, y1, x2, y2, conf=0.9, label="car"):
    return Detection(BBox(x1, y1, x2, y2), conf, label)


class TestMatchDetections:
    def test_perfect_match(self):
        preds = [det(0, 0, 10, 10)]
        refs = [det(0, 0, 10, 10)]
        result = match_detections(preds, refs)
        assert result.pairs == ((0, 0),)
        assert result.precision == 1.0
        assert result.recall == 1.0
        assert result.ious == (pytest.approx(1.0),)

    def test_no_overlap_no_match(self):
        result = match_detections([det(0, 0, 1, 1)], [det(50, 50, 60, 60)])
        assert result.pairs == ()
        assert result.false_positives == 1
        assert result.false_negatives == 1

    def test_empty_predictions(self):
        result = match_detections([], [det(0, 0, 1, 1)])
        assert result.unmatched_references == (0,)
        assert result.recall == 0.0

    def test_empty_references(self):
        result = match_detections([det(0, 0, 1, 1)], [])
        assert result.unmatched_predictions == (0,)
        assert result.precision == 0.0

    def test_both_empty(self):
        result = match_detections([], [])
        assert result.pairs == ()
        assert result.precision == 0.0
        assert result.f1 == 0.0

    def test_confidence_priority(self):
        # Two predictions compete for one reference; the more confident wins.
        preds = [det(0, 0, 10, 10, conf=0.5), det(1, 1, 11, 11, conf=0.9)]
        refs = [det(1, 1, 11, 11)]
        result = match_detections(preds, refs)
        assert result.pairs == ((1, 0),)
        assert result.unmatched_predictions == (0,)

    def test_class_aware_blocks_cross_label(self):
        preds = [det(0, 0, 10, 10, label="car")]
        refs = [det(0, 0, 10, 10, label="bus")]
        assert match_detections(preds, refs).pairs == ()
        result = match_detections(preds, refs, class_aware=False)
        assert result.pairs == ((0, 0),)

    def test_iou_threshold_respected(self):
        preds = [det(0, 0, 10, 10)]
        refs = [det(5, 0, 15, 10)]  # IoU = 1/3
        assert match_detections(preds, refs, iou_threshold=0.5).pairs == ()
        assert match_detections(preds, refs, iou_threshold=0.3).pairs == ((0, 0),)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            match_detections([], [], iou_threshold=0.0)
        with pytest.raises(ValueError):
            match_detections([], [], iou_threshold=1.5)

    def test_one_to_one_matching(self):
        # One reference cannot absorb two predictions.
        preds = [det(0, 0, 10, 10, conf=0.9), det(0, 0, 10, 10, conf=0.8)]
        refs = [det(0, 0, 10, 10)]
        result = match_detections(preds, refs)
        assert result.true_positives == 1
        assert result.false_positives == 1

    def test_f1(self):
        preds = [det(0, 0, 10, 10), det(100, 100, 110, 110)]
        refs = [det(0, 0, 10, 10), det(50, 50, 60, 60)]
        result = match_detections(preds, refs)
        assert result.precision == 0.5
        assert result.recall == 0.5
        assert result.f1 == pytest.approx(0.5)

    def test_accepts_frame_detections(self, simple_frame):
        from repro.detection.types import FrameDetections

        gt = simple_frame.ground_truth_detections()
        frame_dets = FrameDetections(0, tuple(gt))
        result = match_detections(frame_dets, frame_dets)
        assert result.true_positives == len(gt)
