"""Cross-validation of the fast AP path and coco_map.

The hot-path pure-Python AP (``_fast_ap``) must agree exactly with the
reference numpy implementation (``precision_recall_curve().auc()``) — they
implement the same VOC protocol by different code paths, so property-based
agreement is the strongest regression guard for the optimization.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection.boxes import BBox
from repro.detection.metrics import (
    COCO_IOU_THRESHOLDS,
    average_precision,
    coco_map,
    mean_average_precision,
    precision_recall_curve,
)
from repro.detection.types import Detection

confs = st.floats(min_value=0.01, max_value=0.99)


@st.composite
def detections(draw):
    x1 = draw(st.floats(min_value=0, max_value=400))
    y1 = draw(st.floats(min_value=0, max_value=400))
    w = draw(st.floats(min_value=2, max_value=150))
    h = draw(st.floats(min_value=2, max_value=150))
    return Detection(BBox(x1, y1, x1 + w, y1 + h), draw(confs), "car")


det_lists = st.lists(detections(), min_size=0, max_size=10)


@given(det_lists, det_lists, st.sampled_from([0.3, 0.5, 0.75]))
@settings(max_examples=120)
def test_fast_ap_matches_reference_implementation(preds, refs, threshold):
    fast = average_precision(preds, refs, threshold)
    if refs:
        reference = precision_recall_curve(preds, refs, threshold).auc()
    else:
        reference = 1.0 if not preds else 0.0
    assert fast == pytest.approx(reference, abs=1e-12)


class TestCocoMap:
    def _make(self, x1, y1, x2, y2, conf=0.9, label="car"):
        return Detection(BBox(x1, y1, x2, y2), conf, label)

    def test_thresholds_constant(self):
        assert COCO_IOU_THRESHOLDS[0] == 0.5
        assert COCO_IOU_THRESHOLDS[-1] == 0.95
        assert len(COCO_IOU_THRESHOLDS) == 10

    def test_perfect_boxes_score_one(self):
        refs = [self._make(0, 0, 100, 100)]
        assert coco_map(refs, refs) == pytest.approx(1.0)

    def test_sloppy_boxes_score_below_map50(self):
        refs = [self._make(0, 0, 100, 100)]
        # 80% IoU-ish box: perfect at 0.5, failing at 0.85+.
        preds = [self._make(5, 5, 100, 100, conf=0.9)]
        map50 = mean_average_precision(preds, refs, 0.5)
        full = coco_map(preds, refs)
        assert full < map50

    def test_rewards_localization_quality(self):
        refs = [self._make(0, 0, 100, 100)]
        tight = [self._make(1, 1, 100, 100, conf=0.9)]
        loose = [self._make(12, 12, 112, 112, conf=0.9)]
        assert coco_map(tight, refs) > coco_map(loose, refs)

    def test_empty_thresholds_rejected(self):
        with pytest.raises(ValueError):
            coco_map([], [], thresholds=())

    def test_mean_over_thresholds(self):
        refs = [self._make(0, 0, 100, 100)]
        preds = [self._make(5, 5, 100, 100, conf=0.9)]
        manual = sum(
            mean_average_precision(preds, refs, t) for t in COCO_IOU_THRESHOLDS
        ) / len(COCO_IOU_THRESHOLDS)
        assert coco_map(preds, refs) == pytest.approx(manual)
