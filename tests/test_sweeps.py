"""Unit tests for the parameter-sweep helpers (small scale)."""

import pytest

from repro.core.baselines import BruteForce
from repro.core.mes import MES
from repro.runner.experiment import standard_setup
from repro.runner.sweeps import budget_sweep, gamma_sweep, weight_sweep


def tiny_setup(trial):
    return standard_setup(
        "nusc-clear", trial=trial, scale=0.02, m=2, max_frames=15
    )


class TestWeightSweep:
    def test_structure(self):
        results = weight_sweep(
            tiny_setup,
            {"BF": BruteForce, "MES": lambda: MES(gamma=2)},
            accuracy_weights=(0.2, 0.8),
            num_trials=1,
        )
        assert set(results) == {0.2, 0.8}
        for outcomes in results.values():
            assert set(outcomes) == {"BF", "MES"}
            assert len(outcomes["MES"].s_sum) == 1

    def test_weights_change_scores(self):
        results = weight_sweep(
            tiny_setup,
            {"BF": BruteForce},
            accuracy_weights=(0.1, 0.9),
            num_trials=1,
        )
        low = results[0.1]["BF"].stats("s_sum").mean
        high = results[0.9]["BF"].stats("s_sum").mean
        # BF pays maximum cost, so a heavier accuracy weight helps it.
        assert high != low


class TestBudgetSweep:
    def test_monotone_frames(self):
        results = budget_sweep(
            tiny_setup,
            {"BF": BruteForce},
            budgets_ms=(50.0, 5000.0),
            num_trials=1,
        )
        small = results[50.0]["BF"].frames_processed[0]
        large = results[5000.0]["BF"].frames_processed[0]
        assert small <= large

    def test_empty_budgets_rejected(self):
        with pytest.raises(ValueError):
            budget_sweep(tiny_setup, {"BF": BruteForce}, budgets_ms=())


class TestGammaSweep:
    def test_structure(self):
        results = gamma_sweep(
            tiny_setup,
            lambda gamma: MES(gamma=gamma),
            gammas=(1, 3),
            num_trials=1,
        )
        assert set(results) == {1, 3}
        for outcome in results.values():
            assert len(outcome.s_sum) == 1
