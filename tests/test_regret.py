"""Unit tests for empirical regret, including the sub-linearity check."""

import pytest

from repro.core.baselines import Oracle, RandomSelection
from repro.core.environment import DetectionEnvironment, EvaluationStore
from repro.core.mes import MES
from repro.core.regret import empirical_regret, oracle_scores, regret_curve
from repro.core.scoring import WeightedLogScore
from repro.simulation.world import generate_video


class TestOracleScores:
    def test_matches_oracle_run(self, detector_pool, lidar, small_video):
        cache = EvaluationStore()
        env = DetectionEnvironment(detector_pool, lidar, cache=cache)
        scores = oracle_scores(env, small_video.frames)
        env2 = DetectionEnvironment(detector_pool, lidar, cache=cache)
        opt = Oracle().run(env2, small_video.frames)
        assert scores == pytest.approx([r.true_score for r in opt.records])


class TestEmpiricalRegret:
    def test_oracle_has_zero_regret(self, environment, small_video):
        oracle = oracle_scores(environment, small_video.frames)
        result = Oracle().run(environment, small_video.frames)
        assert empirical_regret(result, oracle) == pytest.approx(0.0, abs=1e-9)

    def test_regret_non_negative(self, detector_pool, lidar, small_video):
        cache = EvaluationStore()
        env = DetectionEnvironment(detector_pool, lidar, cache=cache)
        oracle = oracle_scores(env, small_video.frames)
        env2 = DetectionEnvironment(detector_pool, lidar, cache=cache)
        result = RandomSelection(seed=3).run(env2, small_video.frames)
        assert empirical_regret(result, oracle) >= 0.0

    def test_short_oracle_rejected(self, environment, small_video):
        result = RandomSelection(seed=0).run(environment, small_video.frames)
        with pytest.raises(ValueError):
            empirical_regret(result, [1.0])

    def test_curve_is_cumulative(self, detector_pool, lidar, small_video):
        cache = EvaluationStore()
        env = DetectionEnvironment(detector_pool, lidar, cache=cache)
        oracle = oracle_scores(env, small_video.frames)
        env2 = DetectionEnvironment(detector_pool, lidar, cache=cache)
        result = RandomSelection(seed=3).run(env2, small_video.frames)
        curve = regret_curve(result, oracle)
        assert len(curve) == result.frames_processed
        assert curve[-1] == pytest.approx(empirical_regret(result, oracle))
        # Per-frame regret is non-negative so the curve never decreases.
        assert all(b >= a - 1e-9 for a, b in zip(curve, curve[1:], strict=False))


class TestMESRegretGrowth:
    def test_mes_regret_grows_sublinearly(self, detector_pool, lidar):
        """Theorem 4.1 shape: per-frame regret shrinks as the video grows.

        We compare MES's average per-frame regret on the first half vs the
        second half of a longer stationary video; UCB convergence means the
        second half must be no worse.
        """
        video = generate_video("regret/clear", 400, "clear", seed=17)
        cache = EvaluationStore()
        scoring = WeightedLogScore(0.5)
        env = DetectionEnvironment(detector_pool, lidar, scoring=scoring, cache=cache)
        oracle = oracle_scores(env, video.frames)
        env2 = DetectionEnvironment(detector_pool, lidar, scoring=scoring, cache=cache)
        result = MES(gamma=5).run(env2, video.frames)
        curve = regret_curve(result, oracle)
        half = len(curve) // 2
        first_half_rate = curve[half - 1] / half
        second_half_rate = (curve[-1] - curve[half - 1]) / (len(curve) - half)
        assert second_half_rate <= first_half_rate
