"""Unit tests for the query lexer and parser."""

import pytest

from repro.query.ast import Comparison, CountExpr, ExistsExpr, FieldRef, LogicalExpr
from repro.query.parser import (
    ParseError,
    format_parse_error,
    parse_query,
    tokenize,
)


class TestTokenize:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT frameID FROM")
        kinds = [t.kind for t in tokens]
        assert kinds == ["KEYWORD", "IDENT", "KEYWORD", "EOF"]

    def test_string_literals(self):
        tokens = tokenize("'car' \"bus\"")
        assert tokens[0].value == "car"
        assert tokens[1].value == "bus"

    def test_numbers(self):
        tokens = tokenize("0.5 42")
        assert [t.value for t in tokens[:2]] == ["0.5", "42"]

    def test_operators(self):
        tokens = tokenize(">= <= != = < > ( ) , ; *")
        assert [t.value for t in tokens[:-1]] == [
            ">=", "<=", "!=", "=", "<", ">", "(", ")", ",", ";", "*",
        ]

    def test_hyphenated_identifiers(self):
        tokens = tokenize("SW-MES yolov7-tiny-night")
        assert tokens[0].value == "SW-MES"
        assert tokens[1].value == "yolov7-tiny-night"

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            tokenize("SELECT @")


QUERY = """
SELECT frameID
FROM (PROCESS inputVideo PRODUCE frameID, Detections
      USING MES(OD1, OD2, OD3; REF) WITH gamma=5)
WHERE COUNT('car') >= 2
"""


class TestParseQuery:
    def test_full_query(self):
        query = parse_query(QUERY)
        assert query.select == ("frameID",)
        process = query.process
        assert process.video == "inputVideo"
        assert process.produce == ("frameID", "Detections")
        assert process.algorithm == "MES"
        assert process.models == ("OD1", "OD2", "OD3")
        assert process.reference == "REF"
        assert process.params == {"gamma": 5.0}
        assert isinstance(query.where, Comparison)

    def test_no_where(self):
        query = parse_query(
            "SELECT frameID FROM (PROCESS v PRODUCE frameID USING BF(m1))"
        )
        assert query.where is None

    def test_no_reference(self):
        query = parse_query(
            "SELECT frameID FROM (PROCESS v PRODUCE frameID USING MES(m1, m2))"
        )
        assert query.process.reference is None

    def test_keywords_case_insensitive(self):
        query = parse_query(
            "select frameID from (process v produce frameID using mes(m1))"
        )
        assert query.process.algorithm == "mes"

    def test_count_star(self):
        query = parse_query(
            "SELECT frameID FROM (PROCESS v PRODUCE frameID USING BF(m1)) "
            "WHERE COUNT(*) > 0"
        )
        assert isinstance(query.where, Comparison)
        assert query.where.left == CountExpr(None, 0.0)

    def test_count_with_confidence_floor(self):
        query = parse_query(
            "SELECT frameID FROM (PROCESS v PRODUCE frameID USING BF(m1)) "
            "WHERE COUNT('car', conf > 0.5) >= 2"
        )
        assert query.where.left == CountExpr("car", 0.5)

    def test_exists(self):
        query = parse_query(
            "SELECT frameID FROM (PROCESS v PRODUCE frameID USING BF(m1)) "
            "WHERE EXISTS('pedestrian', conf >= 0.3)"
        )
        assert query.where == ExistsExpr("pedestrian", 0.3)

    def test_logical_composition(self):
        query = parse_query(
            "SELECT frameID FROM (PROCESS v PRODUCE frameID USING BF(m1)) "
            "WHERE COUNT('car') > 1 AND (EXISTS('bus') OR NOT EXISTS('truck'))"
        )
        where = query.where
        assert isinstance(where, LogicalExpr) and where.op == "and"
        inner = where.operands[1]
        assert isinstance(inner, LogicalExpr) and inner.op == "or"
        negation = inner.operands[1]
        assert isinstance(negation, LogicalExpr) and negation.op == "not"

    def test_field_comparison(self):
        query = parse_query(
            "SELECT frameID FROM (PROCESS v PRODUCE frameID USING BF(m1)) "
            "WHERE frameID < 100"
        )
        assert query.where == Comparison(FieldRef("frameID"), "<", 100.0)

    def test_with_multiple_params(self):
        query = parse_query(
            "SELECT frameID FROM (PROCESS v PRODUCE frameID "
            "USING SW-MES(m1, m2) WITH window=50, gamma=3)"
        )
        assert query.process.params == {"window": 50.0, "gamma": 3.0}

    def test_select_must_be_produced(self):
        with pytest.raises(ValueError, match="not produced"):
            parse_query(
                "SELECT score FROM (PROCESS v PRODUCE frameID USING BF(m1))"
            )

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_query(
                "SELECT frameID FROM (PROCESS v PRODUCE frameID USING BF(m1)) junk extra"
            )

    def test_missing_paren(self):
        with pytest.raises(ParseError):
            parse_query("SELECT frameID FROM (PROCESS v PRODUCE frameID USING BF(m1)")

    def test_empty_model_list_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT frameID FROM (PROCESS v PRODUCE frameID USING BF())")

    def test_confidence_floor_requires_gt(self):
        with pytest.raises(ParseError, match="floors"):
            parse_query(
                "SELECT frameID FROM (PROCESS v PRODUCE frameID USING BF(m1)) "
                "WHERE COUNT('car', conf < 0.5) > 1"
            )


class TestExplainPrefix:
    def test_explain_flag_set(self):
        query = parse_query(
            "EXPLAIN SELECT frameID FROM "
            "(PROCESS v PRODUCE frameID USING BF(m1))"
        )
        assert query.explain is True

    def test_explain_defaults_false(self):
        query = parse_query(
            "SELECT frameID FROM (PROCESS v PRODUCE frameID USING BF(m1))"
        )
        assert query.explain is False

    def test_explain_case_insensitive(self):
        query = parse_query(
            "explain select frameID from (process v produce frameID using bf(m1))"
        )
        assert query.explain is True


class TestErrorPositions:
    def test_unexpected_character_position(self):
        text = "SELECT @"
        with pytest.raises(ParseError) as info:
            tokenize(text)
        assert info.value.position == text.index("@")

    def test_syntax_error_carries_token_position(self):
        text = "SELECT frameID FORM (PROCESS v PRODUCE frameID USING BF(m1))"
        with pytest.raises(ParseError) as info:
            parse_query(text)
        assert info.value.position == text.index("FORM")
        assert "(at position" in str(info.value)

    def test_eof_error_position_is_end_of_text(self):
        text = "SELECT frameID FROM (PROCESS v PRODUCE frameID USING BF(m1)"
        with pytest.raises(ParseError) as info:
            parse_query(text)
        assert info.value.position is not None
        assert info.value.position >= len(text.rstrip()) - 1

    def test_message_attribute_has_no_position_suffix(self):
        with pytest.raises(ParseError) as info:
            parse_query("SELECT frameID FORM (PROCESS v PRODUCE frameID USING BF(m1))")
        assert "(at position" not in info.value.message


class TestFormatParseError:
    def test_caret_points_at_offending_token(self):
        text = "SELECT frameID FORM (PROCESS v PRODUCE frameID USING BF(m1))"
        with pytest.raises(ParseError) as info:
            parse_query(text)
        rendered = format_parse_error(info.value, text)
        lines = rendered.splitlines()
        assert lines[0].startswith("error: ")
        assert lines[1] == f"  {text}"
        assert lines[2].index("^") - 2 == text.index("FORM")

    def test_caret_on_correct_line_of_multiline_query(self):
        text = "SELECT frameID\nFORM (PROCESS v PRODUCE frameID USING BF(m1))"
        with pytest.raises(ParseError) as info:
            parse_query(text)
        rendered = format_parse_error(info.value, text)
        lines = rendered.splitlines()
        assert lines[1] == "  FORM (PROCESS v PRODUCE frameID USING BF(m1))"
        assert lines[2] == "  ^"

    def test_positionless_error_renders_message_only(self):
        error = ParseError("boom")
        assert format_parse_error(error, "whatever") == "error: boom"
