"""Integration tests for the query engine."""

import pytest
from tests.conftest import make_detection

from repro.detection.types import FrameDetections
from repro.query.executor import QueryEngine, Row
from repro.query.parser import ParseError
from repro.query.planner import PlanError


@pytest.fixture
def engine(detector_pool, lidar, small_video):
    engine = QueryEngine()
    engine.register_video("inputVideo", small_video)
    for det in detector_pool:
        engine.register_detector(det)
    engine.register_reference(lidar)
    return engine


MODELS = "yolov7-tiny-clear, yolov7-tiny-night, yolov7-tiny-rainy"


class TestCatalog:
    def test_registration(self, engine):
        assert engine.videos == ["inputVideo"]
        assert len(engine.detectors) == 3
        assert engine.references == ["lidar-ref"]

    def test_empty_video_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.register_video("empty", [])

    def test_unnamed_detector_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.register_detector(object())


class TestExecute:
    def test_unfiltered_query_returns_all_frames(self, engine, small_video):
        result = engine.execute(
            f"SELECT frameID FROM (PROCESS inputVideo PRODUCE frameID, Detections "
            f"USING MES({MODELS}; lidar-ref) WITH gamma=2)"
        )
        assert len(result) == len(small_video)
        assert result.frame_ids() == list(range(len(small_video)))

    def test_where_filters_rows(self, engine, small_video):
        all_rows = engine.execute(
            f"SELECT frameID FROM (PROCESS inputVideo PRODUCE frameID, Detections "
            f"USING BF({MODELS}))"
        )
        filtered = engine.execute(
            f"SELECT frameID FROM (PROCESS inputVideo PRODUCE frameID, Detections "
            f"USING BF({MODELS})) WHERE COUNT('car') >= 3"
        )
        assert len(filtered) < len(all_rows)
        # Every surviving row really satisfies the predicate.
        for row in filtered.rows:
            cars = [d for d in row.detections if d.label == "car"]
            assert len(cars) >= 3

    def test_frameid_predicate(self, engine):
        result = engine.execute(
            f"SELECT frameID FROM (PROCESS inputVideo PRODUCE frameID, Detections "
            f"USING SGL({MODELS})) WHERE frameID < 5"
        )
        assert result.frame_ids() == [0, 1, 2, 3, 4]

    def test_budgeted_query_processes_prefix(self, engine, small_video):
        result = engine.execute(
            f"SELECT frameID FROM (PROCESS inputVideo PRODUCE frameID, Detections "
            f"USING MES-B({MODELS}; lidar-ref) WITH budget=200, gamma=2)"
        )
        assert 0 < len(result.selection.records) < len(small_video)

    def test_default_reference_used_when_omitted(self, engine):
        result = engine.execute(
            f"SELECT frameID FROM (PROCESS inputVideo PRODUCE frameID, Detections "
            f"USING MES({MODELS}) WITH gamma=2) WHERE frameID < 3"
        )
        assert len(result) == 3

    def test_result_columns(self, engine):
        result = engine.execute(
            f"SELECT frameID FROM (PROCESS inputVideo PRODUCE frameID, Detections "
            f"USING SGL({MODELS})) WHERE frameID < 2"
        )
        ids = result.column("frameID")
        assert ids == [0, 1]
        detections = result.column("Detections")
        assert all(isinstance(d, FrameDetections) for d in detections)

    def test_parse_error_propagates(self, engine):
        with pytest.raises(ParseError):
            engine.execute("SELECT FROM nothing")

    def test_plan_error_on_unknown_detector(self, engine):
        with pytest.raises(PlanError):
            engine.execute(
                "SELECT frameID FROM (PROCESS inputVideo PRODUCE frameID "
                "USING MES(ghost-model))"
            )

    def test_unproducible_column_rejected(self, engine):
        with pytest.raises(PlanError, match="cannot produce"):
            engine.execute(
                f"SELECT frameID FROM (PROCESS inputVideo PRODUCE frameID, magic "
                f"USING BF({MODELS}))"
            )

    def test_subset_of_models_usable(self, engine):
        result = engine.execute(
            "SELECT frameID FROM (PROCESS inputVideo PRODUCE frameID, Detections "
            "USING BF(yolov7-tiny-clear)) WHERE frameID < 3"
        )
        assert all(row.ensemble == ("yolov7-tiny-clear",) for row in result.rows)


class TestRow:
    def test_value_accessor(self):
        dets = FrameDetections(0, (make_detection(),))
        row = Row(frame_id=0, detections=dets, score=0.5, ensemble=("m1",))
        assert row.value("frameID") == 0
        assert row.value("SCORE") == 0.5
        with pytest.raises(KeyError):
            row.value("bogus")
