"""Tests for the unified frame pipeline (frame → evaluate → observe → record)."""

from __future__ import annotations

import pytest

from repro.core.environment import DetectionEnvironment
from repro.core.mes import MES
from repro.engine.pipeline import FramePipeline, FrameRecord


def _greedy_choose(env, t, frame):
    """A trivial hook: evaluate all singles, select the first."""
    singles = [key for key in env.all_ensembles if len(key) == 1]
    return singles[0], singles


class TestPipeline:
    def test_yields_one_record_per_frame(
        self, detector_pool, lidar, small_video
    ):
        env = DetectionEnvironment(detector_pool, lidar)
        pipeline = FramePipeline(env)
        records = list(pipeline.run(small_video.frames[:7], _greedy_choose))
        assert len(records) == 7
        assert [r.iteration for r in records] == list(range(1, 8))
        assert [r.frame_index for r in records] == [
            f.index for f in small_video.frames[:7]
        ]
        assert all(isinstance(r, FrameRecord) for r in records)

    def test_budget_guard_stops_iteration(
        self, detector_pool, lidar, small_video
    ):
        env = DetectionEnvironment(detector_pool, lidar)
        probe = list(
            FramePipeline(env).run(small_video.frames[:1], _greedy_choose)
        )
        per_frame_ms = probe[0].charged_ms
        # Budget for ~3 frames: frame t+1 starts only while spent <= B.
        budget = per_frame_ms * 2.5
        env2 = DetectionEnvironment(detector_pool, lidar)
        records = list(
            FramePipeline(env2, budget_ms=budget).run(
                small_video.frames, _greedy_choose
            )
        )
        assert 0 < len(records) < len(small_video.frames)
        spent = sum(r.charged_ms for r in records)
        # The last started iteration may overshoot, but without its charge
        # the run was still within budget.
        assert spent - records[-1].charged_ms <= budget

    def test_budget_landing_exactly_on_b_admits_next_iteration(self):
        """Alg. 2 line 6 is ``<= B``: when cumulative spend lands exactly
        on the budget, the next iteration still starts (and may overshoot);
        only spend strictly above B stops the loop."""
        from types import SimpleNamespace

        per_frame_ms = 100.0

        class _StubEnv:
            def charge_overhead(self, count):
                pass

            def note_frame_abandoned(self):
                pass

            def note_frame_degraded(self):
                pass

            def evaluate(self, frame, keys, charge=True):
                evaluation = SimpleNamespace(
                    key=keys[0],
                    realized_key=keys[0],
                    est_score=1.0,
                    est_ap=1.0,
                    true_score=1.0,
                    true_ap=1.0,
                    cost_ms=per_frame_ms,
                    normalized_cost=1.0,
                )
                return SimpleNamespace(
                    evaluations={keys[0]: evaluation},
                    billable_ms=per_frame_ms,
                )

        def choose(env, t, frame):
            return ("a",), [("a",)]

        frames = [SimpleNamespace(index=i) for i in range(10)]
        pipeline = FramePipeline(_StubEnv(), budget_ms=3 * per_frame_ms)
        records = list(pipeline.run(frames, choose))
        # Frames 1–3 spend exactly B=300; frame 4 is admitted because the
        # guard is strict (>), and its charge ends the run at 400.
        assert len(records) == 4
        assert sum(r.charged_ms for r in records) == 4 * per_frame_ms

    def test_invalid_budget_rejected(self, environment):
        with pytest.raises(ValueError, match="budget_ms"):
            FramePipeline(environment, budget_ms=0.0)
        with pytest.raises(ValueError, match="budget_ms"):
            FramePipeline(environment, budget_ms=-10.0)

    def test_selected_must_be_in_evaluation_list(
        self, detector_pool, lidar, small_video
    ):
        env = DetectionEnvironment(detector_pool, lidar)

        def bad_choose(env, t, frame):
            singles = [key for key in env.all_ensembles if len(key) == 1]
            return env.full_ensemble, singles  # selected not evaluated

        pipeline = FramePipeline(env, label="bad-algo")
        with pytest.raises(RuntimeError, match="bad-algo"):
            list(pipeline.run(small_video.frames[:1], bad_choose))

    def test_observers_fire_per_frame(self, detector_pool, lidar, small_video):
        env = DetectionEnvironment(detector_pool, lidar)
        seen = []

        def observer(frame, batch, record):
            assert record.selected in batch.evaluations
            seen.append((frame.index, record.iteration))

        pipeline = FramePipeline(env, observers=[observer])
        records = list(pipeline.run(small_video.frames[:5], _greedy_choose))
        assert len(seen) == len(records) == 5
        assert seen == [(r.frame_index, r.iteration) for r in records]

    def test_update_hook_sees_batch_before_record(
        self, detector_pool, lidar, small_video
    ):
        env = DetectionEnvironment(detector_pool, lidar)
        updates = []

        def update(env_, t, frame, batch):
            updates.append((t, sorted(batch.evaluations)))

        list(
            FramePipeline(env).run(
                small_video.frames[:3], _greedy_choose, update
            )
        )
        assert [t for t, _ in updates] == [1, 2, 3]

    def test_works_on_lazy_streams(self, detector_pool, lidar, small_video):
        """The pipeline never materializes its input."""
        env = DetectionEnvironment(detector_pool, lidar)

        def stream():
            yield from small_video.frames[:4]

        records = list(FramePipeline(env).run(stream(), _greedy_choose))
        assert len(records) == 4


class TestSingleLoopOwnership:
    def test_algorithms_share_the_pipeline_loop(
        self, detector_pool, lidar, small_video
    ):
        """IterativeSelection runs drive FramePipeline — observers wired
        through `run` see exactly the frames the pipeline processed."""
        env = DetectionEnvironment(detector_pool, lidar)
        observed = []
        result = MES().run(
            env,
            small_video.frames[:6],
            observers=[lambda f, b, r: observed.append(r)],
        )
        assert observed == list(result.records)

    def test_run_stream_uses_same_pipeline(
        self, detector_pool, lidar, small_video
    ):
        env_stream = DetectionEnvironment(detector_pool, lidar)
        streamed = list(
            MES().run_stream(env_stream, iter(small_video.frames[:6]))
        )
        env_batch = DetectionEnvironment(detector_pool, lidar)
        batch = MES().run(env_batch, small_video.frames[:6])
        assert streamed == list(batch.records)
