"""Unit tests for AP / mAP metrics."""

import pytest

from repro.detection.boxes import BBox
from repro.detection.metrics import (
    average_precision,
    mean_average_precision,
    precision_recall_curve,
)
from repro.detection.types import Detection


def det(x1, y1, x2, y2, conf=0.9, label="car"):
    return Detection(BBox(x1, y1, x2, y2), conf, label)


class TestAveragePrecision:
    def test_perfect_detection(self):
        refs = [det(0, 0, 10, 10), det(50, 50, 80, 90)]
        assert average_precision(refs, refs) == pytest.approx(1.0)

    def test_empty_both_is_one(self):
        assert average_precision([], []) == 1.0

    def test_no_predictions_zero(self):
        assert average_precision([], [det(0, 0, 1, 1)]) == 0.0

    def test_only_false_positives_zero(self):
        assert average_precision([det(0, 0, 1, 1)], []) == 0.0

    def test_half_recall(self):
        refs = [det(0, 0, 10, 10), det(100, 100, 110, 110)]
        preds = [det(0, 0, 10, 10, conf=0.9)]
        # One TP at rank 1: precision 1.0 up to recall 0.5, nothing after.
        assert average_precision(preds, refs) == pytest.approx(0.5)

    def test_false_positive_before_true_positive(self):
        refs = [det(0, 0, 10, 10)]
        preds = [
            det(500, 500, 510, 510, conf=0.95),  # FP ranked first
            det(0, 0, 10, 10, conf=0.5),  # TP ranked second
        ]
        # Precision at the TP's rank is 1/2; AP = 0.5.
        assert average_precision(preds, refs) == pytest.approx(0.5)

    def test_true_positive_before_false_positive(self):
        refs = [det(0, 0, 10, 10)]
        preds = [
            det(0, 0, 10, 10, conf=0.95),
            det(500, 500, 510, 510, conf=0.5),
        ]
        # TP first: full recall achieved at precision 1; trailing FP is free.
        assert average_precision(preds, refs) == pytest.approx(1.0)

    def test_ap_monotone_in_extra_true_positive(self):
        refs = [det(0, 0, 10, 10), det(100, 100, 120, 120)]
        base = [det(0, 0, 10, 10, conf=0.9)]
        better = base + [det(100, 100, 120, 120, conf=0.5)]
        assert average_precision(better, refs) > average_precision(base, refs)

    def test_label_filter(self):
        refs = [det(0, 0, 10, 10, label="car"), det(50, 50, 60, 60, label="bus")]
        preds = [det(0, 0, 10, 10, label="car")]
        assert average_precision(preds, refs, label="car") == pytest.approx(1.0)
        assert average_precision(preds, refs, label="bus") == 0.0

    def test_iou_threshold(self):
        refs = [det(0, 0, 10, 10)]
        preds = [det(5, 0, 15, 10, conf=0.9)]  # IoU 1/3
        assert average_precision(preds, refs, iou_threshold=0.5) == 0.0
        assert average_precision(preds, refs, iou_threshold=0.3) == pytest.approx(1.0)


class TestMeanAveragePrecision:
    def test_two_classes(self):
        refs = [det(0, 0, 10, 10, label="car"), det(100, 100, 110, 110, label="bus")]
        preds = [det(0, 0, 10, 10, conf=0.9, label="car")]
        # car AP = 1.0, bus AP = 0.0
        assert mean_average_precision(preds, refs) == pytest.approx(0.5)

    def test_empty_everything(self):
        assert mean_average_precision([], []) == 1.0

    def test_explicit_labels(self):
        refs = [det(0, 0, 10, 10, label="car")]
        preds = [det(0, 0, 10, 10, label="car")]
        value = mean_average_precision(preds, refs, labels=["car", "bus"])
        # bus: nothing to detect and nothing predicted -> AP 1.0
        assert value == pytest.approx(1.0)

    def test_cross_label_never_matches(self):
        refs = [det(0, 0, 10, 10, label="car")]
        preds = [det(0, 0, 10, 10, conf=0.9, label="bus")]
        assert mean_average_precision(preds, refs) == 0.0


class TestPRCurve:
    def test_curve_shape(self):
        refs = [det(0, 0, 10, 10), det(100, 100, 110, 110)]
        preds = [
            det(0, 0, 10, 10, conf=0.9),
            det(500, 500, 510, 510, conf=0.7),
            det(100, 100, 110, 110, conf=0.5),
        ]
        curve = precision_recall_curve(preds, refs)
        assert curve.num_references == 2
        assert curve.recall == (0.5, 0.5, 1.0)
        assert curve.precision == (1.0, 0.5, pytest.approx(2.0 / 3.0))
        assert curve.confidences == (0.9, 0.7, 0.5)

    def test_interpolated_precision_monotone(self):
        refs = [det(0, 0, 10, 10), det(100, 100, 110, 110)]
        preds = [
            det(0, 0, 10, 10, conf=0.9),
            det(500, 500, 510, 510, conf=0.7),
            det(100, 100, 110, 110, conf=0.5),
        ]
        interp = precision_recall_curve(preds, refs).interpolated_precision()
        assert all(interp[i] >= interp[i + 1] for i in range(len(interp) - 1))

    def test_auc_matches_average_precision(self):
        refs = [det(0, 0, 10, 10), det(100, 100, 110, 110)]
        preds = [
            det(0, 0, 10, 10, conf=0.9),
            det(500, 500, 510, 510, conf=0.7),
            det(100, 100, 110, 110, conf=0.5),
        ]
        curve = precision_recall_curve(preds, refs)
        assert curve.auc() == pytest.approx(average_precision(preds, refs))

    def test_empty_curve(self):
        curve = precision_recall_curve([], [])
        assert curve.auc() == 0.0
        assert curve.interpolated_precision() == ()
