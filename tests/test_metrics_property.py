"""Property-based tests for AP metrics."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection.boxes import BBox
from repro.detection.metrics import average_precision, mean_average_precision
from repro.detection.types import Detection

labels = st.sampled_from(["car", "bus", "pedestrian"])
confs = st.floats(min_value=0.01, max_value=0.99)


@st.composite
def detections(draw, label=None):
    x1 = draw(st.floats(min_value=0, max_value=500))
    y1 = draw(st.floats(min_value=0, max_value=500))
    w = draw(st.floats(min_value=1, max_value=200))
    h = draw(st.floats(min_value=1, max_value=200))
    return Detection(
        BBox(x1, y1, x1 + w, y1 + h),
        draw(confs),
        label if label is not None else draw(labels),
    )


det_lists = st.lists(detections(), min_size=0, max_size=8)


@given(det_lists, det_lists)
@settings(max_examples=80)
def test_ap_in_unit_interval(preds, refs):
    value = average_precision(preds, refs)
    assert 0.0 <= value <= 1.0 + 1e-9


@given(det_lists)
@settings(max_examples=40)
def test_ap_of_reference_against_itself_is_perfect(refs):
    # Degenerate zero-area boxes can never match (IoU 0), so restrict.
    refs = [r for r in refs if r.box.area > 0]
    assert average_precision(refs, refs) == 1.0


@given(det_lists, det_lists)
@settings(max_examples=60)
def test_map_in_unit_interval(preds, refs):
    value = mean_average_precision(preds, refs)
    assert 0.0 <= value <= 1.0 + 1e-9


@given(det_lists, det_lists)
@settings(max_examples=40)
def test_ap_confidence_rescaling_invariance(preds, refs):
    """AP depends only on the confidence *ordering*, not magnitudes."""
    base = average_precision(preds, refs)
    # Monotone transform of confidences preserves ordering.
    rescaled = [
        d.with_confidence(0.05 + 0.9 * d.confidence**2) for d in preds
    ]
    assert math.isclose(
        average_precision(rescaled, refs), base, abs_tol=1e-9
    )


@given(st.lists(detections(), min_size=1, max_size=6), st.integers(min_value=1, max_value=4))
@settings(max_examples=60)
def test_trailing_false_positives_are_free_after_full_recall(refs, num_fps):
    """All-point AP ignores FPs ranked after full recall is reached."""
    refs = [r for r in refs if r.box.area > 0]
    if not refs:
        return
    perfect = [
        Detection(r.box, 0.95, r.label, source="oracle") for r in refs
    ]
    fps = [
        Detection(BBox(5000 + 20 * i, 5000, 5010 + 20 * i, 5010), 0.05, "car")
        for i in range(num_fps)
    ]
    assert average_precision(perfect + fps, refs) == 1.0
