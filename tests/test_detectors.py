"""Unit tests for the simulated camera detectors."""

import pytest

from repro.simulation.detectors import SimulatedDetector
from repro.simulation.profiles import make_profile
from repro.simulation.world import generate_video


@pytest.fixture
def clear_detector():
    return SimulatedDetector(make_profile("yolov7", "clear"), seed=1)


@pytest.fixture
def night_detector():
    return SimulatedDetector(make_profile("yolov7", "night"), seed=1)


class TestSimulatedDetector:
    def test_deterministic_per_frame(self, clear_detector, simple_frame):
        a = clear_detector.detect(simple_frame)
        b = clear_detector.detect(simple_frame)
        assert a.detections == b.detections
        assert a.inference_time_ms == b.inference_time_ms

    def test_different_seeds_give_different_checkpoints(self, simple_frame):
        profile = make_profile("yolov7-tiny", "clear")
        a = SimulatedDetector(profile, seed=1).detect(simple_frame)
        b = SimulatedDetector(profile, seed=2).detect(simple_frame)
        assert a.detections != b.detections

    def test_detections_are_valid_triplets(self, clear_detector, small_video):
        for frame in small_video:
            output = clear_detector.detect(frame)
            for det in output.detections:
                assert 0.0 <= det.confidence <= 1.0
                assert det.label
                assert det.box.x1 <= det.box.x2
                assert det.source == clear_detector.name

    def test_boxes_clipped_to_frame(self, clear_detector, small_video):
        for frame in small_video:
            for det in clear_detector.detect(frame).detections:
                assert 0 <= det.box.x1 <= det.box.x2 <= frame.width
                assert 0 <= det.box.y1 <= det.box.y2 <= frame.height

    def test_inference_time_near_table3(self, clear_detector, small_video):
        times = [clear_detector.detect(f).inference_time_ms for f in small_video]
        mean = sum(times) / len(times)
        base = clear_detector.profile.architecture.base_time_ms
        # Base time +-5% jitter plus small per-box cost.
        assert base * 0.9 < mean < base * 1.2

    def test_domain_match_improves_recall(self):
        """A night-trained detector finds more objects at night."""
        night_video = generate_video("nv", 60, "night", seed=21)
        clear_det = SimulatedDetector(make_profile("yolov7", "clear"), seed=1)
        night_det = SimulatedDetector(make_profile("yolov7", "night"), seed=1)

        def recall(detector):
            found, total = 0, 0
            for frame in night_video:
                ids = {
                    d.object_id
                    for d in detector.detect(frame).detections
                    if d.object_id is not None
                }
                total += len(frame.objects)
                found += sum(1 for o in frame.objects if o.object_id in ids)
            return found / max(total, 1)

        assert recall(night_det) > recall(clear_det)

    def test_heavier_architecture_more_accurate(self, small_video):
        big = SimulatedDetector(make_profile("yolov7", "clear"), seed=1)
        tiny = SimulatedDetector(make_profile("yolov7-micro", "clear"), seed=1)

        def recall(detector):
            found, total = 0, 0
            for frame in small_video:
                ids = {
                    d.object_id
                    for d in detector.detect(frame).detections
                    if d.object_id is not None
                }
                total += len(frame.objects)
                found += sum(1 for o in frame.objects if o.object_id in ids)
            return found / max(total, 1)

        assert recall(big) > recall(tiny)

    def test_clutter_raises_false_positives(self):
        clear_video = generate_video("cv", 80, "clear", seed=31)
        rainy_video = generate_video("rv", 80, "rainy", seed=31)
        detector = SimulatedDetector(make_profile("yolov7-tiny", "clear"), seed=1)

        def fp_rate(video):
            count = 0
            for frame in video:
                count += sum(
                    1
                    for d in detector.detect(frame).detections
                    if d.object_id is None
                )
            return count / len(video)

        assert fp_rate(rainy_video) > fp_rate(clear_video)

    def test_expected_time_property(self, clear_detector):
        assert clear_detector.expected_time_ms == 49.5
