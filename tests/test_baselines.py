"""Unit tests for the baseline strategies (Section 5.3)."""

import pytest

from repro.core.baselines import (
    BruteForce,
    ExploreFirst,
    MESA,
    Oracle,
    RandomSelection,
    SingleBest,
)
from repro.core.environment import DetectionEnvironment, EvaluationStore
from repro.core.scoring import WeightedLogScore


@pytest.fixture
def frames(small_video):
    return small_video.frames


class TestOracle:
    def test_selects_true_score_argmax(self, environment, frames):
        result = Oracle().run(environment, frames[:5])
        for record in result.records:
            peek = environment.evaluate(
                frames[record.frame_index], environment.all_ensembles, charge=False
            )
            best = max(ev.true_score for ev in peek.evaluations.values())
            assert record.true_score == pytest.approx(best)

    def test_oracle_dominates_everyone(self, detector_pool, lidar, frames):
        cache = EvaluationStore()
        scoring = WeightedLogScore(0.5)

        def run(algo):
            env = DetectionEnvironment(
                detector_pool, lidar, scoring=scoring, cache=cache
            )
            return algo.run(env, frames)

        opt = run(Oracle()).s_sum
        for algo in (BruteForce(), SingleBest(), RandomSelection(seed=1)):
            assert run(algo).s_sum <= opt + 1e-9

    def test_peeks_do_not_consume_budget(self, environment, frames):
        result = Oracle().run(environment, frames[:5])
        # Billed per frame: just the chosen ensemble, never all 7.
        for record in result.records:
            assert record.charged_ms <= record.cost_ms * 1.05


class TestBruteForce:
    def test_always_full_ensemble(self, environment, frames):
        result = BruteForce().run(environment, frames[:5])
        assert all(
            r.selected == environment.full_ensemble for r in result.records
        )

    def test_highest_cost_per_frame(self, environment, frames):
        result = BruteForce().run(environment, frames[:5])
        for record in result.records:
            assert record.normalized_cost > 0.5


class TestSingleBest:
    def test_always_single_detector(self, environment, frames):
        result = SingleBest().run(environment, frames[:5])
        chosen = {r.selected for r in result.records}
        assert len(chosen) == 1
        assert len(next(iter(chosen))) == 1

    def test_picks_most_accurate_single(self, environment, frames):
        algo = SingleBest()
        algo.run(environment, frames[:8])
        singles = [(name,) for name in environment.model_names]
        totals = {key: 0.0 for key in singles}
        for frame in frames[:8]:
            batch = environment.evaluate(frame, singles, charge=False)
            for key in singles:
                totals[key] += batch.evaluations[key].true_ap
        best = max(singles, key=lambda key: (totals[key], key))
        assert algo._best == best

    def test_calibration_frames_subsample(self, environment, frames):
        algo = SingleBest(calibration_frames=3)
        result = algo.run(environment, frames)
        assert result.frames_processed == len(frames)

    def test_invalid_calibration(self):
        with pytest.raises(ValueError):
            SingleBest(calibration_frames=0)


class TestRandomSelection:
    def test_deterministic_given_seed(self, detector_pool, lidar, frames):
        def run(seed):
            env = DetectionEnvironment(detector_pool, lidar)
            return RandomSelection(seed=seed).run(env, frames)

        assert [r.selected for r in run(1).records] == [
            r.selected for r in run(1).records
        ]
        assert [r.selected for r in run(1).records] != [
            r.selected for r in run(2).records
        ]

    def test_explores_multiple_ensembles(self, environment, frames):
        result = RandomSelection(seed=0).run(environment, frames)
        assert len(result.selection_counts()) > 1


class TestExploreFirst:
    def test_commits_after_exploration(self, environment, frames):
        result = ExploreFirst(delta=4).run(environment, frames)
        tail = {r.selected for r in result.records[4:]}
        assert len(tail) == 1

    def test_exploration_phase_uses_full_ensemble(self, environment, frames):
        result = ExploreFirst(delta=4).run(environment, frames)
        for record in result.records[:4]:
            assert record.selected == environment.full_ensemble

    def test_commits_to_best_estimate(self, environment, frames):
        algo = ExploreFirst(delta=4)
        algo.run(environment, frames)
        best = max(
            environment.all_ensembles,
            key=lambda key: (algo._stats.mean(key), key),
        )
        assert algo._committed == best

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            ExploreFirst(delta=0)


class TestMESA:
    def test_no_subset_piggyback(self, environment, frames):
        algo = MESA(gamma=3)
        algo.run(environment, frames)
        # Post-init, only the selected ensemble gains observations, so a
        # single arm's count is bounded by init + its own selections, which
        # is strictly less than MES's subset-boosted counts.
        total_observations = sum(
            algo.statistics.count(key) for key in environment.all_ensembles
        )
        # Init contributes 3 * 7 observations, then 1 per iteration.
        expected = 3 * 7 + (len(frames) - 3)
        assert total_observations == expected
