"""Cross-module integration tests: end-to-end shapes at small scale."""

import pytest

from repro.core.baselines import BruteForce, Oracle, RandomSelection
from repro.core.environment import DetectionEnvironment, EvaluationStore
from repro.core.mes import MES
from repro.core.scoring import LinearScore, WeightedLogScore
from repro.ensembling.nms import NonMaximumSuppression
from repro.runner.experiment import run_algorithms, standard_setup


class TestEndToEnd:
    def test_standard_setup_to_selection(self):
        setup = standard_setup(
            "nusc-rainy", trial=0, scale=0.03, m=3, max_frames=60
        )
        env = DetectionEnvironment(
            list(setup.detectors), setup.reference, scoring=WeightedLogScore(0.5)
        )
        result = MES(gamma=3).run(env, setup.frames)
        assert result.frames_processed == 60
        assert 0 < result.s_sum < 60
        assert env.clock.detector_ms > 0

    def test_shared_cache_is_result_invariant(self, detector_pool, lidar, small_video):
        """Sharing a cache must not change any algorithm's output."""
        scoring = WeightedLogScore(0.5)

        def run(cache):
            env = DetectionEnvironment(
                detector_pool, lidar, scoring=scoring, cache=cache
            )
            return MES(gamma=3).run(env, small_video.frames)

        isolated = run(None)
        shared = EvaluationStore()
        # Warm the cache with a different algorithm first.
        env_warm = DetectionEnvironment(
            detector_pool, lidar, scoring=scoring, cache=shared
        )
        RandomSelection(seed=9).run(env_warm, small_video.frames)
        cached = run(shared)
        assert [r.selected for r in cached.records] == [
            r.selected for r in isolated.records
        ]
        assert cached.s_sum == pytest.approx(isolated.s_sum)

    def test_alternative_fusion_method_works_end_to_end(self):
        setup = standard_setup(
            "nusc-clear", trial=0, scale=0.02, m=2, max_frames=25
        )
        results = run_algorithms(
            setup,
            {"BF": BruteForce, "MES": lambda: MES(gamma=2)},
            fusion=NonMaximumSuppression(),
        )
        assert results["MES"].frames_processed == 25

    def test_alternative_scoring_function_works_end_to_end(self):
        setup = standard_setup(
            "nusc-clear", trial=0, scale=0.02, m=2, max_frames=25
        )
        results = run_algorithms(
            setup,
            {"MES": lambda: MES(gamma=2)},
            scoring=LinearScore(0.6),
        )
        for record in results["MES"].records:
            assert 0.0 <= record.true_score <= 1.0

    def test_oracle_bounds_everyone_on_every_frame(self, detector_pool, lidar, small_video):
        cache = EvaluationStore()
        scoring = WeightedLogScore(0.5)

        def run(algo):
            env = DetectionEnvironment(
                detector_pool, lidar, scoring=scoring, cache=cache
            )
            return algo.run(env, small_video.frames)

        opt = run(Oracle())
        mes = run(MES(gamma=3))
        for opt_rec, mes_rec in zip(opt.records, mes.records, strict=True):
            assert opt_rec.true_score >= mes_rec.true_score - 1e-9

    def test_domain_specialization_visible_in_selection(self):
        """On a night video, MES must favor the night-trained detector."""
        setup = standard_setup(
            "nusc-night", trial=0, scale=0.1, m=3, max_frames=400
        )
        env = DetectionEnvironment(
            list(setup.detectors), setup.reference, scoring=WeightedLogScore(0.5)
        )
        result = MES(gamma=5).run(env, setup.frames)
        usage = {name: 0 for name in env.model_names}
        for record in result.records:
            for member in record.selected:
                usage[member] += 1
        assert usage["yolov7-tiny-night"] == max(usage.values())

    def test_estimated_ranking_tracks_true_ranking(self):
        """REF-based AP must rank ensembles like ground-truth AP (Section 2.3)."""
        setup = standard_setup(
            "nusc-night", trial=0, scale=0.05, m=3, max_frames=120
        )
        env = DetectionEnvironment(
            list(setup.detectors), setup.reference, scoring=WeightedLogScore(0.5)
        )
        est_totals = {key: 0.0 for key in env.all_ensembles}
        true_totals = {key: 0.0 for key in env.all_ensembles}
        for frame in setup.frames:
            batch = env.evaluate(frame, env.all_ensembles, charge=False)
            for key, ev in batch.evaluations.items():
                est_totals[key] += ev.est_ap
                true_totals[key] += ev.true_ap
        est_rank = sorted(env.all_ensembles, key=lambda k: -est_totals[k])
        true_rank = sorted(env.all_ensembles, key=lambda k: -true_totals[k])
        # Spearman-style agreement: rank correlation must be strongly
        # positive (the paper's requirement is relative ranking, Eq. 3).
        positions = {key: i for i, key in enumerate(true_rank)}
        displacement = sum(
            abs(positions[key] - i) for i, key in enumerate(est_rank)
        )
        max_displacement = len(est_rank) ** 2 / 2
        assert displacement < 0.3 * max_displacement
