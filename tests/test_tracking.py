"""Unit tests for the IoU tracker and tracking metrics."""

import pytest

from repro.detection.boxes import BBox
from repro.detection.types import Detection, FrameDetections
from repro.simulation.video import Frame, GroundTruthObject
from repro.tracking.metrics import evaluate_tracking
from repro.tracking.tracker import IoUTracker


def det(x1, y1, x2, y2, conf=0.9, label="car"):
    return Detection(BBox(x1, y1, x2, y2), conf, label)


def feed(tracker, frames_of_dets):
    return [tracker.update(FrameDetections(i, tuple(dets)))
            for i, dets in enumerate(frames_of_dets)]


class TestIoUTracker:
    def test_stable_identity_for_static_object(self):
        tracker = IoUTracker(min_hits=2)
        outputs = feed(tracker, [[det(0, 0, 100, 100)]] * 5)
        # Confirmed from the second frame on, with one stable id.
        assert outputs[0] == []
        ids = {t.track_id for out in outputs[1:] for t in out}
        assert ids == {1}

    def test_follows_moving_object(self):
        tracker = IoUTracker(min_hits=2)
        frames = [[det(10 * i, 0, 100 + 10 * i, 100)] for i in range(8)]
        outputs = feed(tracker, frames)
        ids = {t.track_id for out in outputs[2:] for t in out}
        assert ids == {1}
        # The reported box tracks the detection.
        last = outputs[-1][0]
        assert last.box.x1 == pytest.approx(70, abs=1)

    def test_velocity_prediction_bridges_missed_frames(self):
        tracker = IoUTracker(min_hits=2, max_age=3, iou_threshold=0.3)
        moving = [[det(20 * i, 0, 150 + 20 * i, 120)] for i in range(5)]
        feed(tracker, moving)
        # Two blank frames: the track coasts on its velocity.
        coasting = tracker.update(FrameDetections(5))
        assert coasting and coasting[0].coasting
        tracker.update(FrameDetections(6))
        # The object reappears where constant velocity predicts (~x=140).
        reappeared = tracker.update(
            FrameDetections(7, (det(140, 0, 290, 120),))
        )
        assert reappeared[0].track_id == 1
        assert not reappeared[0].coasting

    def test_track_dropped_after_max_age(self):
        tracker = IoUTracker(min_hits=1, max_age=2)
        feed(tracker, [[det(0, 0, 100, 100)]])
        for i in range(1, 5):
            tracker.update(FrameDetections(i))
        assert tracker.active_tracks == 0

    def test_min_hits_suppresses_one_off_false_positive(self):
        tracker = IoUTracker(min_hits=3)
        outputs = feed(
            tracker,
            [[det(0, 0, 50, 50)], [], [], []],
        )
        assert all(out == [] for out in outputs)

    def test_two_objects_two_tracks(self):
        tracker = IoUTracker(min_hits=2)
        frames = [
            [det(0, 0, 100, 100), det(500, 500, 650, 620)] for _ in range(4)
        ]
        outputs = feed(tracker, frames)
        assert len(outputs[-1]) == 2
        assert {t.track_id for t in outputs[-1]} == {1, 2}

    def test_labels_do_not_cross_associate(self):
        tracker = IoUTracker(min_hits=1)
        feed(tracker, [[det(0, 0, 100, 100, label="car")]])
        outputs = tracker.update(
            FrameDetections(1, (det(0, 0, 100, 100, label="pedestrian"),))
        )
        # The pedestrian starts its own track rather than stealing the
        # car's identity.
        ids = {t.track_id for t in outputs}
        assert 2 in ids or len(ids) <= 1

    def test_low_confidence_ignored(self):
        tracker = IoUTracker(min_hits=1, min_confidence=0.5)
        outputs = feed(tracker, [[det(0, 0, 100, 100, conf=0.2)]])
        assert outputs == [[]]
        assert tracker.active_tracks == 0

    def test_reset(self):
        tracker = IoUTracker(min_hits=1)
        feed(tracker, [[det(0, 0, 100, 100)]])
        tracker.reset()
        assert tracker.active_tracks == 0
        feed(tracker, [[det(0, 0, 100, 100)]])
        assert tracker._next_id == 2  # ids restart

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            IoUTracker(iou_threshold=0.0)
        with pytest.raises(ValueError):
            IoUTracker(max_age=0)
        with pytest.raises(ValueError):
            IoUTracker(velocity_smoothing=1.0)


class TestEvaluateTracking:
    def _gt_frame(self, index, category, positions):
        objects = tuple(
            GroundTruthObject(oid, BBox(x, y, x + 100, y + 100), "car", 10.0, 0.9)
            for oid, (x, y) in positions.items()
        )
        return Frame(index, category, objects, video_name="track-test")

    def test_perfect_tracking(self, clear_category):
        frames = [
            self._gt_frame(i, clear_category, {0: (10 * i, 0)})
            for i in range(6)
        ]
        tracker = IoUTracker(min_hits=1)
        outputs = [
            tracker.update(
                FrameDetections(
                    f.index, tuple(o.as_detection() for o in f.objects)
                )
            )
            for f in frames
        ]
        quality = evaluate_tracking(frames, outputs)
        assert quality.coverage == pytest.approx(1.0)
        assert quality.precision == pytest.approx(1.0)
        assert quality.identity_switches == 0
        assert quality.fragmentation == 1.0

    def test_mismatched_lengths(self, clear_category):
        frames = [self._gt_frame(0, clear_category, {0: (0, 0)})]
        with pytest.raises(ValueError):
            evaluate_tracking(frames, [])

    def test_empty_video_yields_zero_rates(self):
        """No frames at all: every rate is 0.0 (the repo-wide empty-
        denominator convention), never a vacuous 1.0."""
        quality = evaluate_tracking([], [])
        assert quality.coverage == 0.0
        assert quality.precision == 0.0
        assert quality.identity_switches == 0
        assert quality.fragmentation == 0.0
        assert quality.num_tracks == 0
        assert quality.num_objects == 0

    def test_no_ground_truth_objects_yields_zero_coverage(
        self, clear_category
    ):
        """Frames with no GT objects: coverage has a zero denominator and
        must report 0.0, not 1.0."""
        frames = [
            Frame(i, clear_category, (), video_name="empty") for i in range(3)
        ]
        quality = evaluate_tracking(frames, [[], [], []])
        assert quality.coverage == 0.0
        assert quality.precision == 0.0

    def test_zero_confirmed_tracks_yields_zero_precision(
        self, clear_category
    ):
        """GT exists but the tracker confirmed nothing: precision has a
        zero denominator and must report 0.0."""
        frames = [
            self._gt_frame(i, clear_category, {0: (10 * i, 0)})
            for i in range(3)
        ]
        quality = evaluate_tracking(frames, [[], [], []])
        assert quality.precision == 0.0
        assert quality.coverage == 0.0  # nothing matched either
        assert quality.num_objects == 1
        assert quality.num_tracks == 0

    def test_end_to_end_on_simulated_detections(self, small_video, detector_pool):
        """Tracking fused real-ish detections yields sane statistics."""
        from repro.ensembling.wbf import WeightedBoxesFusion

        fusion = WeightedBoxesFusion()
        tracker = IoUTracker(min_hits=2, max_age=3)
        outputs = []
        for frame in small_video:
            fused = fusion.fuse(
                [d.detect(frame).detections for d in detector_pool]
            )
            outputs.append(tracker.update(fused))
        quality = evaluate_tracking(small_video.frames, outputs)
        assert 0.0 < quality.coverage <= 1.0
        assert 0.0 < quality.precision <= 1.0
        assert quality.num_tracks > 0
        assert quality.fragmentation >= 1.0
