"""Unit tests for the fusion-method registry."""

import pytest

from repro.ensembling.base import EnsembleMethod
from repro.ensembling.registry import available_methods, create_method, register_method
from repro.ensembling.wbf import WeightedBoxesFusion


class TestRegistry:
    def test_all_paper_methods_present(self):
        # The six methods compared in Section 5.2.
        expected = {"nms", "soft_nms", "softer_nms", "wbf", "nmw", "fusion"}
        assert expected.issubset(set(available_methods()))

    def test_create_by_name(self):
        method = create_method("wbf")
        assert isinstance(method, WeightedBoxesFusion)

    def test_create_case_insensitive(self):
        assert isinstance(create_method("WBF"), WeightedBoxesFusion)

    def test_create_with_kwargs(self):
        method = create_method("wbf", iou_threshold=0.7)
        assert method.iou_threshold == 0.7

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown ensemble method"):
            create_method("quantum_nms")

    def test_register_custom(self):
        class Passthrough(EnsembleMethod):
            name = "passthrough-test"

            def _fuse_class(self, detections, num_models):
                return list(detections)

        register_method("passthrough-test", Passthrough)
        assert "passthrough-test" in available_methods()
        assert isinstance(create_method("passthrough-test"), Passthrough)
