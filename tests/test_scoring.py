"""Unit tests for scoring functions (Section 2.2 criteria, Eq. 30)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.scoring import (
    LinearScore,
    ScoringFunction,
    WeightedLogScore,
    verify_criteria,
)

unit = st.floats(min_value=0.0, max_value=1.0)


class TestWeightedLogScore:
    def test_eq30_formula(self):
        score = WeightedLogScore(accuracy_weight=0.5)
        value = score(0.5, 0.25)
        expected = 0.5 * math.log2(1.5) + 0.5 * math.log2(1.75)
        assert value == pytest.approx(expected)

    def test_perfect_cheap_ensemble_scores_one(self):
        assert WeightedLogScore(0.5)(1.0, 0.0) == pytest.approx(1.0)

    def test_useless_expensive_ensemble_scores_zero(self):
        assert WeightedLogScore(0.5)(0.0, 1.0) == pytest.approx(0.0)

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            WeightedLogScore(accuracy_weight=0.5, time_weight=0.6)

    def test_default_time_weight_complements(self):
        score = WeightedLogScore(accuracy_weight=0.7)
        assert score.weights == (0.7, pytest.approx(0.3))

    def test_weight_bounds(self):
        with pytest.raises(ValueError):
            WeightedLogScore(accuracy_weight=1.5)

    def test_input_validation(self):
        score = WeightedLogScore(0.5)
        with pytest.raises(ValueError):
            score(1.5, 0.0)
        with pytest.raises(ValueError):
            score(0.5, -0.1)

    @given(unit, unit)
    def test_score_in_unit_interval(self, ap, cost):
        value = WeightedLogScore(0.5)(ap, cost)
        assert 0.0 <= value <= 1.0

    @given(unit, unit, unit)
    def test_monotone_in_ap(self, ap, delta, cost):
        score = WeightedLogScore(0.5)
        higher = min(ap + delta, 1.0)
        assert score(higher, cost) >= score(ap, cost) - 1e-12

    @given(unit, unit, unit)
    def test_antitone_in_cost(self, ap, cost, delta):
        score = WeightedLogScore(0.5)
        higher = min(cost + delta, 1.0)
        assert score(ap, higher) <= score(ap, cost) + 1e-12

    def test_accuracy_only_weights(self):
        score = WeightedLogScore(accuracy_weight=1.0)
        assert score(0.5, 0.0) == score(0.5, 1.0)

    def test_time_only_weights(self):
        score = WeightedLogScore(accuracy_weight=0.0)
        assert score(0.0, 0.3) == score(1.0, 0.3)


class TestLinearScore:
    def test_formula(self):
        assert LinearScore(0.5)(0.6, 0.2) == pytest.approx(0.5 * 0.6 + 0.5 * 0.8)

    @given(unit, unit)
    def test_in_unit_interval(self, ap, cost):
        assert 0.0 <= LinearScore(0.3)(ap, cost) <= 1.0


class TestVerifyCriteria:
    def test_valid_functions_pass(self):
        verify_criteria(WeightedLogScore(0.5))
        verify_criteria(LinearScore(0.7))

    def test_range_violation_detected(self):
        class TooBig(ScoringFunction):
            def score(self, ap, cost):
                return 2.0 * ap

        with pytest.raises(ValueError, match="out of"):
            verify_criteria(TooBig())

    def test_monotonicity_violation_detected(self):
        class Decreasing(ScoringFunction):
            def score(self, ap, cost):
                return 1.0 - ap

        with pytest.raises(ValueError, match="decreases in AP"):
            verify_criteria(Decreasing())

    def test_cost_direction_violation_detected(self):
        class LikesCost(ScoringFunction):
            def score(self, ap, cost):
                return cost

        with pytest.raises(ValueError, match="increases in cost"):
            verify_criteria(LikesCost())
