"""Unit tests for the selection framework (records, results, run loop)."""

import pytest

from repro.core.baselines import BruteForce
from repro.core.ensembles import make_key
from repro.core.mes import MES
from repro.core.selection import FrameRecord, SelectionResult


def record(iteration, frame_index, selected=("m1",), true_score=0.5,
           charged=10.0, cost=10.0, c_hat=0.2):
    return FrameRecord(
        iteration=iteration,
        frame_index=frame_index,
        selected=selected,
        est_score=true_score * 0.9,
        est_ap=0.4,
        true_score=true_score,
        true_ap=0.5,
        cost_ms=cost,
        normalized_cost=c_hat,
        charged_ms=charged,
    )


class TestSelectionResult:
    def test_empty_result(self):
        result = SelectionResult(algorithm="X", records=[])
        assert result.s_sum == 0.0
        assert result.mean_true_ap == 0.0
        assert result.mean_normalized_cost == 0.0
        assert result.frames_processed == 0
        assert result.selection_counts() == {}

    def test_aggregates(self):
        records = [
            record(1, 0, true_score=0.4, charged=10),
            record(2, 1, true_score=0.6, charged=20),
        ]
        result = SelectionResult(algorithm="X", records=records)
        assert result.s_sum == pytest.approx(1.0)
        assert result.s_sum_estimated == pytest.approx(0.9)
        assert result.total_charged_ms == pytest.approx(30.0)
        assert result.frames_processed == 2

    def test_selection_counts(self):
        records = [
            record(1, 0, selected=("a",)),
            record(2, 1, selected=("a",)),
            record(3, 2, selected=("a", "b")),
        ]
        result = SelectionResult(algorithm="X", records=records)
        assert result.selection_counts() == {("a",): 2, ("a", "b"): 1}

    def test_cumulative_cost_points(self):
        records = [record(1, 0, charged=5.0), record(2, 1, charged=7.0)]
        result = SelectionResult(algorithm="X", records=records)
        assert result.cumulative_cost_points() == [(1, 5.0), (2, 12.0)]


class TestRunLoop:
    def test_zero_budget_rejected(self, environment, small_video):
        with pytest.raises(ValueError):
            BruteForce().run(environment, small_video.frames, budget_ms=0.0)

    def test_negative_budget_rejected(self, environment, small_video):
        with pytest.raises(ValueError):
            BruteForce().run(environment, small_video.frames, budget_ms=-5.0)

    def test_empty_frames_empty_result(self, environment):
        result = BruteForce().run(environment, [])
        assert result.frames_processed == 0

    def test_overhead_charged_per_candidate(self, environment, small_video):
        MES(gamma=2).run(environment, small_video.frames[:5])
        assert environment.clock.overhead_ms > 0.0

    def test_records_iteration_numbers_contiguous(self, environment, small_video):
        result = MES(gamma=2).run(environment, small_video.frames[:10])
        assert [r.iteration for r in result.records] == list(range(1, 11))

    def test_misbehaving_choose_detected(self, environment, small_video):
        class Broken(MES):
            name = "broken"

            def _choose(self, env, t, frame):
                # Selected ensemble deliberately left out of the
                # evaluation list: the loop must refuse to misaccount.
                return env.full_ensemble, [make_key([env.model_names[0]])]

        with pytest.raises(RuntimeError, match="missing"):
            Broken(gamma=1).run(environment, small_video.frames[:3])
