"""Unit tests for hard NMS fusion."""

import pytest

from repro.detection.boxes import BBox
from repro.detection.types import Detection, FrameDetections
from repro.ensembling.nms import NonMaximumSuppression


def frame(dets, index=0, source=None):
    return FrameDetections(index, tuple(dets), source)


def det(x1, y1, x2, y2, conf, label="car", source="m1"):
    return Detection(BBox(x1, y1, x2, y2), conf, label, source=source)


class TestNMS:
    def test_suppresses_overlapping_lower_confidence(self):
        nms = NonMaximumSuppression(iou_threshold=0.5)
        result = nms.fuse(
            [
                frame([det(0, 0, 10, 10, 0.9, source="a")]),
                frame([det(1, 0, 11, 10, 0.7, source="b")]),
            ]
        )
        assert len(result) == 1
        assert result.detections[0].confidence == 0.9

    def test_keeps_disjoint_boxes(self):
        nms = NonMaximumSuppression()
        result = nms.fuse(
            [frame([det(0, 0, 10, 10, 0.9), det(100, 100, 120, 120, 0.8)])]
        )
        assert len(result) == 2

    def test_classes_do_not_suppress_each_other(self):
        nms = NonMaximumSuppression()
        result = nms.fuse(
            [
                frame(
                    [
                        det(0, 0, 10, 10, 0.9, label="car"),
                        det(0, 0, 10, 10, 0.8, label="bus"),
                    ]
                )
            ]
        )
        assert len(result) == 2

    def test_confidence_threshold_prefilters(self):
        nms = NonMaximumSuppression(confidence_threshold=0.5)
        result = nms.fuse(
            [frame([det(0, 0, 10, 10, 0.4), det(50, 50, 60, 60, 0.9)])]
        )
        assert len(result) == 1

    def test_output_sorted_by_confidence(self):
        nms = NonMaximumSuppression()
        result = nms.fuse(
            [frame([det(0, 0, 10, 10, 0.3), det(50, 50, 60, 60, 0.9)])]
        )
        confs = [d.confidence for d in result]
        assert confs == sorted(confs, reverse=True)

    def test_source_set_to_method_name(self):
        nms = NonMaximumSuppression()
        result = nms.fuse([frame([det(0, 0, 10, 10, 0.9)])])
        assert result.source == "nms"

    def test_empty_input_frames(self):
        nms = NonMaximumSuppression()
        assert len(nms.fuse([frame([])])) == 0

    def test_no_frames_rejected(self):
        with pytest.raises(ValueError):
            NonMaximumSuppression().fuse([])

    def test_frame_index_mismatch_rejected(self):
        with pytest.raises(ValueError):
            NonMaximumSuppression().fuse(
                [frame([det(0, 0, 1, 1, 0.5)], index=0), frame([], index=1)]
            )

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            NonMaximumSuppression(iou_threshold=1.5)
        with pytest.raises(ValueError):
            NonMaximumSuppression(confidence_threshold=-0.1)

    def test_boundary_iou_not_suppressed(self):
        # Equal to the threshold is kept (suppression requires strict >).
        nms = NonMaximumSuppression(iou_threshold=1.0)
        result = nms.fuse(
            [frame([det(0, 0, 10, 10, 0.9), det(0, 0, 10, 10, 0.8)])]
        )
        assert len(result) == 2
