"""Unit tests for the regret-growth analysis helpers."""

import math

import pytest

from repro.core.analysis import fit_log_growth, fit_power_growth, halves_ratio


def log_curve(n, a=5.0, b=2.0):
    return [a * math.log(t) + b for t in range(1, n + 1)]


def power_curve(n, a=2.0, p=0.5):
    return [a * t**p for t in range(1, n + 1)]


def linear_curve(n, rate=0.3):
    return [rate * t for t in range(1, n + 1)]


class TestFitLogGrowth:
    def test_recovers_exact_log_curve(self):
        fit = fit_log_growth(log_curve(500, a=5.0, b=2.0))
        assert fit.coefficient == pytest.approx(5.0, rel=1e-6)
        assert fit.offset == pytest.approx(2.0, rel=1e-3)
        assert fit.r_squared > 0.999

    def test_linear_curve_fits_log_badly(self):
        good = fit_log_growth(log_curve(500)).r_squared
        bad = fit_log_growth(linear_curve(500)).r_squared
        assert good > bad

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_log_growth([1.0, 2.0])


class TestFitPowerGrowth:
    def test_recovers_exponent(self):
        fit = fit_power_growth(power_curve(500, a=2.0, p=0.5))
        assert fit.exponent == pytest.approx(0.5, abs=0.02)
        assert fit.coefficient == pytest.approx(2.0, rel=0.05)

    def test_linear_curve_exponent_one(self):
        fit = fit_power_growth(linear_curve(500))
        assert fit.exponent == pytest.approx(1.0, abs=0.02)

    def test_zero_regret_reports_flat(self):
        fit = fit_power_growth([0.0] * 100)
        assert fit.exponent == 0.0
        assert fit.r_squared == 1.0

    def test_log_curve_has_small_exponent(self):
        fit = fit_power_growth(log_curve(1000))
        assert fit.exponent < 0.5


class TestHalvesRatio:
    def test_log_curve_ratio_well_below_one(self):
        assert halves_ratio(log_curve(1000)) < 0.5

    def test_linear_curve_ratio_near_one(self):
        assert halves_ratio(linear_curve(1000)) == pytest.approx(1.0, abs=0.01)

    def test_flat_curve(self):
        assert halves_ratio([0.0, 0.0, 0.0, 0.0]) == 0.0

    def test_too_short(self):
        with pytest.raises(ValueError):
            halves_ratio([1.0, 2.0])


class TestOnRealAlgorithms:
    def test_mes_regret_fits_sublinear_growth(self, detector_pool, lidar):
        """Theorem 4.1 signature: MES's regret exponent is well below 1."""
        from repro.core.environment import DetectionEnvironment, EvaluationStore
        from repro.core.mes import MES
        from repro.core.baselines import RandomSelection
        from repro.core.regret import oracle_scores, regret_curve
        from repro.core.scoring import WeightedLogScore
        from repro.simulation.world import generate_video

        video = generate_video("analysis/clear", 500, "clear", seed=23)
        cache = EvaluationStore()
        scoring = WeightedLogScore(0.5)
        env = DetectionEnvironment(detector_pool, lidar, scoring=scoring, cache=cache)
        oracle = oracle_scores(env, video.frames)

        def curve_for(algo):
            env_run = DetectionEnvironment(
                detector_pool, lidar, scoring=scoring, cache=cache
            )
            result = algo.run(env_run, video.frames)
            return regret_curve(result, oracle)

        mes_fit = fit_power_growth(curve_for(MES(gamma=5)), skip=10)
        rand_fit = fit_power_growth(
            curve_for(RandomSelection(seed=2)), skip=10
        )
        # RAND's regret is linear; MES's grows strictly slower.
        assert rand_fit.exponent > 0.9
        assert mes_fit.exponent < rand_fit.exponent
