"""Unit tests for the Table 1 / Table 2 dataset builders."""

import pytest

from repro.simulation.datasets import (
    BDD_SPEC,
    DatasetSpec,
    GroupSpec,
    NUSCENES_SPEC,
    build_bdd_like,
    build_nuscenes_like,
)


class TestGroupSpec:
    def test_num_samples(self):
        group = GroupSpec("g", (("clear", 1.0),), 10, 50)
        assert group.num_samples == 500

    def test_scaled_keeps_at_least_one_scene(self):
        group = GroupSpec("g", (("clear", 1.0),), 10, 50)
        assert group.scaled(0.001).num_scenes == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            GroupSpec("", (("clear", 1.0),), 1, 1)
        with pytest.raises(ValueError):
            GroupSpec("g", (), 1, 1)
        with pytest.raises(ValueError):
            GroupSpec("g", (("clear", 1.0),), 0, 1)


class TestSpecs:
    def test_nuscenes_matches_table1(self):
        # Table 1: 850 scenes / 42,500 samples; clear 274 / 13,700;
        # night 79 / 3,950; rainy 184 / 9,200.
        total_scenes = sum(g.num_scenes for g in NUSCENES_SPEC.groups)
        total_samples = sum(g.num_samples for g in NUSCENES_SPEC.groups)
        assert total_scenes == 850
        assert total_samples == 42_500
        by_name = {g.name: g for g in NUSCENES_SPEC.groups}
        assert by_name["nusc-clear"].num_scenes == 274
        assert by_name["nusc-clear"].num_samples == 13_700
        assert by_name["nusc-night"].num_scenes == 79
        assert by_name["nusc-night"].num_samples == 3_950
        assert by_name["nusc-rainy"].num_scenes == 184
        assert by_name["nusc-rainy"].num_samples == 9_200

    def test_bdd_matches_table2(self):
        by_name = {g.name: g for g in BDD_SPEC.groups}
        assert by_name["bdd-main"].num_scenes == 300
        assert by_name["bdd-main"].num_samples == 30_000
        assert by_name["bdd-rainy"].num_scenes == 120
        assert by_name["bdd-snow"].num_scenes == 132

    def test_duplicate_group_names_rejected(self):
        group = GroupSpec("g", (("clear", 1.0),), 1, 1)
        with pytest.raises(ValueError):
            DatasetSpec("d", (group, group))


class TestBuild:
    @pytest.fixture(scope="class")
    def tiny_nusc(self):
        return build_nuscenes_like(seed=1, scale=0.01)

    def test_group_structure(self, tiny_nusc):
        assert set(tiny_nusc.group_names()) == {
            "nusc-clear",
            "nusc-night",
            "nusc-rainy",
            "nusc-other",
        }

    def test_homogeneous_group_categories(self, tiny_nusc):
        for video in tiny_nusc.scenes("nusc-night"):
            assert all(f.category.name == "night" for f in video)

    def test_deterministic_build(self):
        a = build_nuscenes_like(seed=1, scale=0.01)
        b = build_nuscenes_like(seed=1, scale=0.01)
        for va, vb in zip(a.scenes(), b.scenes(), strict=True):
            assert va.name == vb.name
            assert all(fa.objects == fb.objects for fa, fb in zip(va, vb, strict=True))

    def test_resample_changes_content(self, tiny_nusc):
        resampled = tiny_nusc.resample(trial=3)
        assert resampled.spec is tiny_nusc.spec
        original = tiny_nusc.scenes()[0]
        changed = resampled.scenes()[0]
        assert any(
            fa.objects != fb.objects for fa, fb in zip(original, changed, strict=True)
        )

    def test_as_video_concatenates_group(self, tiny_nusc):
        video = tiny_nusc.as_video("nusc-night")
        assert len(video) == tiny_nusc.num_samples("nusc-night")
        assert video.breakpoints == ()

    def test_as_video_whole_dataset(self, tiny_nusc):
        video = tiny_nusc.as_video()
        assert len(video) == tiny_nusc.num_samples()

    def test_unknown_group(self, tiny_nusc):
        with pytest.raises(KeyError):
            tiny_nusc.scenes("nusc-fog")

    def test_summary_rows(self, tiny_nusc):
        rows = tiny_nusc.summary()
        assert [r["group"] for r in rows] == tiny_nusc.group_names()
        for row in rows:
            assert row["num_samples"] > 0
            assert row["duration_min"] > 0

    def test_duration_uses_frame_rate(self):
        data = build_nuscenes_like(seed=0, scale=0.01)
        samples = data.num_samples()
        assert data.duration_minutes() == pytest.approx(samples / 2.0 / 60.0)

    def test_bdd_mixed_main_group(self):
        data = build_bdd_like(seed=2, scale=0.03)
        categories = {
            f.category.name for v in data.scenes("bdd-main") for f in v
        }
        assert len(categories) >= 2  # genuinely mixed conditions
