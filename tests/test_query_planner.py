"""Unit tests for query planning and name binding."""

import pytest

from repro.core.baselines import BruteForce, Oracle
from repro.core.mes import MES
from repro.core.mes_b import MESB
from repro.core.sw_mes import SWMES
from repro.query.parser import parse_query
from repro.query.planner import PlanError, algorithm_registry, build_plan

VIDEOS = ["v"]
DETECTORS = ["m1", "m2"]
REFS = ["lidar"]


def plan(text):
    return build_plan(parse_query(text), VIDEOS, DETECTORS, REFS)


class TestBuildPlan:
    def test_binds_mes(self):
        p = plan(
            "SELECT frameID FROM (PROCESS v PRODUCE frameID USING MES(m1, m2; lidar) WITH gamma=7)"
        )
        assert isinstance(p.algorithm, MES)
        assert p.algorithm.gamma == 7
        assert p.budget_ms is None

    def test_binds_sw_mes_with_window(self):
        p = plan(
            "SELECT frameID FROM (PROCESS v PRODUCE frameID USING SW-MES(m1) WITH window=40)"
        )
        assert isinstance(p.algorithm, SWMES)
        assert p.algorithm.window == 40

    def test_sw_mes_requires_window(self):
        with pytest.raises(PlanError, match="window"):
            plan("SELECT frameID FROM (PROCESS v PRODUCE frameID USING SW-MES(m1))")

    def test_mes_b_requires_budget(self):
        with pytest.raises(PlanError, match="budget"):
            plan("SELECT frameID FROM (PROCESS v PRODUCE frameID USING MES-B(m1))")

    def test_mes_b_budget_extracted(self):
        p = plan(
            "SELECT frameID FROM (PROCESS v PRODUCE frameID USING MES-B(m1) WITH budget=5000)"
        )
        assert isinstance(p.algorithm, MESB)
        assert p.budget_ms == 5000.0

    def test_budget_applies_to_any_algorithm(self):
        p = plan(
            "SELECT frameID FROM (PROCESS v PRODUCE frameID USING BF(m1) WITH budget=100)"
        )
        assert isinstance(p.algorithm, BruteForce)
        assert p.budget_ms == 100.0

    def test_algorithm_names_case_insensitive(self):
        p = plan("SELECT frameID FROM (PROCESS v PRODUCE frameID USING opt(m1))")
        assert isinstance(p.algorithm, Oracle)

    def test_unknown_video(self):
        with pytest.raises(PlanError, match="unknown video"):
            build_plan(
                parse_query(
                    "SELECT frameID FROM (PROCESS ghost PRODUCE frameID USING BF(m1))"
                ),
                VIDEOS,
                DETECTORS,
                REFS,
            )

    def test_unknown_detector(self):
        with pytest.raises(PlanError, match="unknown detector"):
            plan("SELECT frameID FROM (PROCESS v PRODUCE frameID USING BF(ghost))")

    def test_unknown_reference(self):
        with pytest.raises(PlanError, match="unknown reference"):
            plan("SELECT frameID FROM (PROCESS v PRODUCE frameID USING BF(m1; radar))")

    def test_unknown_algorithm(self):
        with pytest.raises(PlanError, match="unknown algorithm"):
            plan("SELECT frameID FROM (PROCESS v PRODUCE frameID USING MAGIC(m1))")

    def test_registry_contains_paper_algorithms(self):
        names = algorithm_registry()
        for expected in ("mes", "mes-b", "sw-mes", "opt", "bf", "sgl", "rand", "ef"):
            assert expected in names
