"""Unit tests for the runner layer: suites, trials, harness, reporting."""

import pytest

from repro.core.baselines import BruteForce, SingleBest
from repro.core.mes import MES
from repro.core.scoring import WeightedLogScore
from repro.runner.experiment import (
    bdd_detector_suite,
    dataset_keys,
    nuscenes_detector_suite,
    run_algorithms,
    standard_setup,
)
from repro.runner.harness import MetricStats, TrialOutcome, compare_algorithms
from repro.runner.reporting import (
    format_series,
    format_table,
    normalize_by,
    safe_rate,
)


class TestDetectorSuites:
    def test_m3_is_the_figure2_trio(self):
        suite = nuscenes_detector_suite(m=3)
        names = [d.name for d in suite]
        assert names == [
            "yolov7-tiny-clear",
            "yolov7-tiny-night",
            "yolov7-tiny-rainy",
        ]

    def test_suites_are_prefix_nested(self):
        small = [d.name for d in nuscenes_detector_suite(m=2)]
        large = [d.name for d in nuscenes_detector_suite(m=5)]
        assert large[:2] == small

    def test_m_bounds(self):
        with pytest.raises(ValueError):
            nuscenes_detector_suite(m=0)
        with pytest.raises(ValueError):
            nuscenes_detector_suite(m=7)

    def test_bdd_suite_has_specialists(self):
        names = [d.name for d in bdd_detector_suite(m=3)]
        assert "yolov7-tiny-rainy" in names
        assert "yolov7-tiny-snow" in names

    def test_seed_changes_checkpoints(self, simple_frame):
        a = nuscenes_detector_suite(m=1, seed=1)[0]
        b = nuscenes_detector_suite(m=1, seed=2)[0]
        assert a.detect(simple_frame).detections != b.detect(simple_frame).detections


class TestStandardSetup:
    def test_basic_shape(self):
        setup = standard_setup("nusc-night", trial=0, scale=0.02, m=3, max_frames=40)
        assert len(setup.frames) == 40
        assert len(setup.detectors) == 3
        assert setup.label == "nusc-night"
        assert all(f.category.name == "night" for f in setup.frames)

    def test_trials_resample(self):
        a = standard_setup("nusc-clear", trial=0, scale=0.02, max_frames=10)
        b = standard_setup("nusc-clear", trial=1, scale=0.02, max_frames=10)
        assert any(
            fa.objects != fb.objects for fa, fb in zip(a.frames, b.frames, strict=True)
        )

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            standard_setup("kitti")

    def test_dataset_keys_cover_paper_datasets(self):
        keys = dataset_keys()
        for expected in ("nusc", "nusc-clear", "nusc-night", "nusc-rainy", "bdd"):
            assert expected in keys


class TestRunAlgorithms:
    def test_shared_trial_consistency(self):
        setup = standard_setup("nusc-clear", trial=0, scale=0.02, m=2, max_frames=20)
        results = run_algorithms(
            setup,
            {"BF": BruteForce, "SGL": SingleBest, "MES": lambda: MES(gamma=2)},
            scoring=WeightedLogScore(0.5),
        )
        assert set(results) == {"BF", "SGL", "MES"}
        for result in results.values():
            assert result.frames_processed == 20

    def test_budget_limits_all(self):
        setup = standard_setup("nusc-clear", trial=0, scale=0.02, m=2, max_frames=30)
        results = run_algorithms(
            setup, {"BF": BruteForce}, budget_ms=100.0
        )
        assert results["BF"].frames_processed < 30


class TestMetricStats:
    def test_summary(self):
        stats = MetricStats.from_values([1.0, 2.0, 3.0])
        assert stats.mean == pytest.approx(2.0)
        assert stats.min == 1.0
        assert stats.max == 3.0
        assert stats.std == pytest.approx(1.0)

    def test_single_value_zero_std(self):
        assert MetricStats.from_values([5.0]).std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MetricStats.from_values([])


class TestCompareAlgorithms:
    def test_collects_all_trials(self):
        outcomes = compare_algorithms(
            lambda t: standard_setup(
                "nusc-clear", trial=t, scale=0.02, m=2, max_frames=15
            ),
            {"BF": BruteForce, "MES": lambda: MES(gamma=2)},
            num_trials=3,
        )
        assert set(outcomes) == {"BF", "MES"}
        for outcome in outcomes.values():
            assert len(outcome.s_sum) == 3
            stats = outcome.stats("s_sum")
            assert stats.min <= stats.mean <= stats.max

    def test_unknown_metric(self):
        outcome = TrialOutcome(algorithm="X")
        with pytest.raises((KeyError, ValueError)):
            outcome.stats("bogus")

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            compare_algorithms(lambda t: None, {}, num_trials=0)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            [{"name": "MES", "score": 1.23456}, {"name": "BF", "score": 0.5}],
            precision=2,
            title="Results",
        )
        lines = text.splitlines()
        assert lines[0] == "Results"
        assert "MES" in lines[3] and "1.23" in lines[3]

    def test_format_table_empty(self):
        assert "(empty)" in format_table([])

    def test_normalize_by(self):
        values = {"MES": 2.0, "EF": 1.0}
        normalized = normalize_by(values, "MES")
        assert normalized == {"MES": 1.0, "EF": 0.5}

    def test_normalize_missing_reference(self):
        with pytest.raises(KeyError):
            normalize_by({"A": 1.0}, "B")

    def test_normalize_zero_reference(self):
        with pytest.raises(ValueError):
            normalize_by({"A": 0.0}, "A")

    def test_format_series(self):
        text = format_series(
            "B", [100, 200], {"MES": [1.0, 2.0], "BF": [0.5, 0.6]}
        )
        assert "100" in text and "MES" in text

    def test_safe_rate(self):
        assert safe_rate(3.0, 4.0) == 0.75
        assert safe_rate(0.0, 4.0) == 0.0

    def test_safe_rate_zero_denominator_defaults_to_zero(self):
        """Empty-input aggregate rates follow the 0.0 convention of
        CacheStats.hit_rate instead of raising ZeroDivisionError."""
        assert safe_rate(5.0, 0.0) == 0.0
        assert safe_rate(0.0, 0) == 0.0
        assert safe_rate(1.0, 0.0, default=float("nan")) != safe_rate(1.0, 0.0)
