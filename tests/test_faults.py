"""Tests for seeded fault injection (simulation.faults)."""

from __future__ import annotations

import pickle

import pytest

from repro.simulation.detectors import SimulatedDetector
from repro.simulation.faults import (
    FAULT_PROFILE_NAMES,
    DetectorOutageError,
    FaultSpec,
    FaultyDetector,
    TransientDetectorError,
    apply_fault_profile,
    fault_profile_specs,
)
from repro.simulation.profiles import make_profile


def _wrap(detector_pool, spec, seed=3):
    return FaultyDetector(detector_pool[0], spec, seed=seed)


class TestFaultSpec:
    def test_defaults_disabled(self):
        spec = FaultSpec()
        assert not spec.enabled
        assert not spec.in_outage(0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"transient_rate": -0.1},
            {"transient_rate": 1.5},
            {"degraded_rate": 2.0},
            {"hang_rate": -1.0},
            {"latency_spike_rate": 1.01},
            {"latency_multiplier": 1.0},
            {"hang_ms": 0.0},
            {"degraded_box_mean": -1.0},
            {"outage": (-1, 5)},
            {"outage": (10, 3)},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(**kwargs)

    def test_outage_range_is_half_open(self):
        spec = FaultSpec(outage=(5, 8))
        assert spec.enabled
        assert not spec.in_outage(4)
        assert spec.in_outage(5)
        assert spec.in_outage(7)
        assert not spec.in_outage(8)


class TestFaultyDetector:
    def test_passes_through_surface(self, detector_pool, simple_frame):
        faulty = _wrap(detector_pool, FaultSpec())
        assert faulty.name == detector_pool[0].name
        assert faulty.expected_time_ms == detector_pool[0].expected_time_ms
        output = faulty.detect(simple_frame)
        assert output == detector_pool[0].detect(simple_frame)

    def test_transient_raises_and_retry_redraws(
        self, detector_pool, simple_frame
    ):
        # With rate 1.0 every attempt fails; with a mid rate some attempt
        # sequence must mix failures and successes deterministically.
        always = _wrap(detector_pool, FaultSpec(transient_rate=1.0))
        with pytest.raises(TransientDetectorError):
            always.detect(simple_frame)
        sometimes = _wrap(detector_pool, FaultSpec(transient_rate=0.5))
        outcomes = []
        for _ in range(12):
            try:
                sometimes.detect(simple_frame)
                outcomes.append(True)
            except TransientDetectorError:
                outcomes.append(False)
        assert True in outcomes and False in outcomes

    def test_fault_stream_is_deterministic(self, detector_pool, simple_frame):
        spec = FaultSpec(transient_rate=0.5, degraded_rate=0.3)

        def trace(seed):
            faulty = _wrap(detector_pool, spec, seed=seed)
            out = []
            for _ in range(10):
                try:
                    out.append(faulty.detect(simple_frame))
                except TransientDetectorError:
                    out.append("transient")
            return out

        assert trace(7) == trace(7)
        assert trace(7) != trace(8)

    def test_outage_raises_for_covered_frames(self, detector_pool, small_video):
        faulty = _wrap(detector_pool, FaultSpec(outage=(2, 10**9)))
        assert faulty.detect(small_video.frames[0]) is not None
        with pytest.raises(DetectorOutageError):
            faulty.detect(small_video.frames[2])
        with pytest.raises(DetectorOutageError):  # retries keep failing
            faulty.detect(small_video.frames[2])

    def test_degraded_output_replaces_detections(
        self, detector_pool, simple_frame
    ):
        faulty = _wrap(detector_pool, FaultSpec(degraded_rate=1.0))
        clean = detector_pool[0].detect(simple_frame)
        degraded = faulty.detect(simple_frame)
        assert degraded.detections != clean.detections
        assert degraded.inference_time_ms == clean.inference_time_ms
        for detection in degraded.detections:
            assert detection.source == faulty.name

    def test_latency_spike_and_hang(self, detector_pool, simple_frame):
        clean = detector_pool[0].detect(simple_frame)
        spiked = _wrap(
            detector_pool,
            FaultSpec(latency_spike_rate=1.0, latency_multiplier=25.0),
        ).detect(simple_frame)
        assert spiked.inference_time_ms == pytest.approx(
            clean.inference_time_ms * 25.0
        )
        assert spiked.detections == clean.detections
        hung = _wrap(
            detector_pool, FaultSpec(hang_rate=1.0, hang_ms=123_456.0)
        ).detect(simple_frame)
        assert hung.inference_time_ms == 123_456.0

    def test_not_picklable_by_design(self, detector_pool):
        faulty = _wrap(detector_pool, FaultSpec(transient_rate=0.1))
        with pytest.raises(TypeError, match="pickl"):
            pickle.dumps(faulty)

    def test_attempt_window_validated(self, detector_pool):
        with pytest.raises(ValueError, match="attempt_window"):
            FaultyDetector(detector_pool[0], FaultSpec(), attempt_window=0)

    def test_attempt_counters_stay_bounded(self, detector_pool, small_video):
        faulty = FaultyDetector(
            detector_pool[0],
            FaultSpec(transient_rate=0.01),
            attempt_window=4,
        )
        for frame in small_video.frames[:20]:
            try:
                faulty.detect(frame)
            except TransientDetectorError:
                pass
        assert len(faulty._attempts) <= 4


class TestProfiles:
    def test_known_names(self):
        assert "none" in FAULT_PROFILE_NAMES
        assert "chaos" in FAULT_PROFILE_NAMES

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError, match="unknown fault profile"):
            fault_profile_specs("meltdown", 3)

    def test_none_profile_is_identity(self, detector_pool):
        wrapped = apply_fault_profile(detector_pool, "none", seed=1)
        assert wrapped == list(detector_pool)

    def test_all_applies_to_every_position(self):
        specs = fault_profile_specs("transient", 4)
        assert sorted(specs) == [0, 1, 2, 3]
        assert all(spec.transient_rate > 0 for spec in specs.values())

    def test_positional_profile_targets_first(self, detector_pool):
        wrapped = apply_fault_profile(detector_pool, "outage-first", seed=1)
        assert isinstance(wrapped[0], FaultyDetector)
        assert wrapped[1] is detector_pool[1]
        assert wrapped[2] is detector_pool[2]

    def test_wrapping_seeds_differ_per_detector(self):
        pool = [
            SimulatedDetector(make_profile("yolov7-tiny", "clear"), seed=1),
            SimulatedDetector(make_profile("yolov7-tiny", "night"), seed=2),
        ]
        wrapped = apply_fault_profile(pool, "transient", seed=9)
        assert wrapped[0].seed != wrapped[1].seed

    def test_positions_beyond_pool_ignored(self):
        specs = fault_profile_specs("outage-first", 1)
        assert sorted(specs) == [0]
