"""Unit tests for the detection environment (costs, caching, scoring)."""

import pytest

from repro.core.environment import DetectionEnvironment, EvaluationStore
from repro.core.scoring import WeightedLogScore
from repro.simulation.detectors import SimulatedDetector
from repro.simulation.profiles import make_profile


class TestConstruction:
    def test_pool_properties(self, environment):
        assert environment.num_models == 3
        assert len(environment.all_ensembles) == 7
        assert environment.full_ensemble == environment.model_names

    def test_duplicate_names_rejected(self, lidar):
        det = SimulatedDetector(make_profile("yolov7-tiny", "clear"), seed=1)
        with pytest.raises(ValueError, match="duplicate"):
            DetectionEnvironment([det, det], lidar)

    def test_empty_pool_rejected(self, lidar):
        with pytest.raises(ValueError):
            DetectionEnvironment([], lidar)

    def test_unknown_detector_lookup(self, environment):
        with pytest.raises(KeyError):
            environment.detector("nonexistent")


class TestEvaluate:
    def test_all_ensembles_evaluated(self, environment, simple_frame):
        batch = environment.evaluate(simple_frame, environment.all_ensembles)
        assert set(batch.evaluations) == set(environment.all_ensembles)

    def test_evaluation_fields_consistent(self, environment, simple_frame):
        batch = environment.evaluate(simple_frame, environment.all_ensembles)
        for key, ev in batch.evaluations.items():
            assert ev.key == key
            assert ev.cost_ms == pytest.approx(ev.inference_ms + ev.ensembling_ms)
            assert 0.0 <= ev.normalized_cost <= 1.0
            assert 0.0 <= ev.est_ap <= 1.0
            assert 0.0 <= ev.true_ap <= 1.0
            assert 0.0 <= ev.est_score <= 1.0
            assert 0.0 <= ev.true_score <= 1.0

    def test_cost_monotone_in_ensemble_size(self, environment, simple_frame):
        batch = environment.evaluate(simple_frame, environment.all_ensembles)
        evaluations = batch.evaluations
        for key, ev in evaluations.items():
            for other_key, other in evaluations.items():
                if set(key) < set(other_key):
                    assert ev.cost_ms < other.cost_ms

    def test_detector_billed_once_per_frame(self, environment, simple_frame):
        """Eq. 12/14: union-of-members inference, not per-ensemble."""
        batch = environment.evaluate(simple_frame, environment.all_ensembles)
        singles_ms = sum(
            batch.evaluations[(name,)].inference_ms
            for name in environment.model_names
        )
        assert batch.detector_ms == pytest.approx(singles_ms)
        # Summing inference over all 7 ensembles would be far larger.
        naive = sum(ev.inference_ms for ev in batch.evaluations.values())
        assert naive > batch.detector_ms * 2

    def test_charge_flag_controls_clock(self, environment, simple_frame):
        environment.evaluate(simple_frame, environment.all_ensembles, charge=False)
        assert environment.clock.total_ms == 0.0
        environment.evaluate(simple_frame, environment.all_ensembles, charge=True)
        assert environment.clock.detector_ms > 0.0
        assert environment.clock.reference_ms > 0.0

    def test_reference_billed_once_per_frame(self, environment, simple_frame):
        b1 = environment.evaluate(simple_frame, [environment.full_ensemble])
        b2 = environment.evaluate(simple_frame, [environment.full_ensemble])
        assert b1.reference_ms > 0.0
        assert b2.reference_ms == 0.0

    def test_unknown_model_in_key(self, environment, simple_frame):
        with pytest.raises(KeyError):
            environment.evaluate(simple_frame, [("ghost-model",)])

    def test_empty_keys_rejected(self, environment, simple_frame):
        with pytest.raises(ValueError):
            environment.evaluate(simple_frame, [])

    def test_duplicate_keys_collapsed(self, environment, simple_frame):
        key = (environment.model_names[0],)
        batch = environment.evaluate(simple_frame, [key, key])
        assert len(batch.evaluations) == 1

    def test_deterministic_evaluations(self, detector_pool, lidar, simple_frame):
        def run():
            env = DetectionEnvironment(
                detector_pool, lidar, scoring=WeightedLogScore(0.5)
            )
            return env.evaluate(simple_frame, env.all_ensembles, charge=False)

        a, b = run(), run()
        for key in a.evaluations:
            assert a.evaluations[key].est_score == b.evaluations[key].est_score
            assert a.evaluations[key].true_ap == b.evaluations[key].true_ap


class TestSharedCache:
    def test_cache_shared_across_environments(self, detector_pool, lidar, simple_frame):
        store = EvaluationStore()
        env1 = DetectionEnvironment(detector_pool, lidar, cache=store)
        env1.evaluate(simple_frame, env1.all_ensembles, charge=False)
        populated = len(store)
        misses_after_first = store.stats().misses
        env2 = DetectionEnvironment(detector_pool, lidar, cache=store)
        env2.evaluate(simple_frame, env2.all_ensembles, charge=False)
        # No new detector inference happened: only cache hits, no new
        # entries, no new misses.
        assert len(store) == populated
        assert store.stats().misses == misses_after_first
        assert store.stats().hits > 0

    def test_clocks_are_independent(self, detector_pool, lidar, simple_frame):
        cache = EvaluationStore()
        env1 = DetectionEnvironment(detector_pool, lidar, cache=cache)
        env2 = DetectionEnvironment(detector_pool, lidar, cache=cache)
        env1.evaluate(simple_frame, env1.all_ensembles, charge=True)
        assert env2.clock.total_ms == 0.0


class TestNormalization:
    def test_normalized_cost_clipped(self, environment):
        assert environment.normalized_cost(1e9) == 1.0
        assert environment.normalized_cost(0.0) == 0.0

    def test_negative_cost_rejected(self, environment):
        with pytest.raises(ValueError):
            environment.normalized_cost(-1.0)

    def test_full_ensemble_below_cmax(self, environment, simple_frame):
        batch = environment.evaluate(simple_frame, [environment.full_ensemble])
        ev = batch.evaluations[environment.full_ensemble]
        assert ev.normalized_cost < 1.0


class TestOverhead:
    def test_charge_overhead(self, environment):
        environment.charge_overhead(31)
        assert environment.clock.overhead_ms > 0.0

    def test_negative_overhead_rejected(self, environment):
        with pytest.raises(ValueError):
            environment.charge_overhead(-1)


class TestPrefetch:
    def test_prefetch_counts_and_warms_every_output(
        self, detector_pool, lidar, small_video
    ):
        env = DetectionEnvironment(detectors=detector_pool, reference=lidar)
        frames = small_video.frames[:6]
        executed = env.prefetch(frames)
        # One job per (model, frame) plus one REF job per frame.
        assert executed == len(frames) * (len(detector_pool) + 1)
        for frame in frames:
            for model in env.model_names:
                assert env.store.contains("detector", (frame.key, model))
            assert env.store.contains("reference", (frame.key, "lidar-ref"))
        # Everything is warm: a second prefetch does nothing.
        assert env.prefetch(frames) == 0

    def test_prefetch_is_result_neutral(
        self, detector_pool, lidar, small_video
    ):
        from repro.core.mes import MES

        frames = small_video.frames[:10]
        plain_env = DetectionEnvironment(
            detectors=detector_pool, reference=lidar
        )
        plain = MES().run(plain_env, frames)
        warm_env = DetectionEnvironment(
            detectors=detector_pool, reference=lidar
        )
        warm_env.prefetch(frames)
        warmed = MES().run(warm_env, frames)
        # Prefetch moves work earlier; it must not move any number.
        assert warmed.records == plain.records
        assert warm_env.clock.snapshot() == plain_env.clock.snapshot()

    def test_prefetch_makes_later_evaluations_pure_hits(
        self, detector_pool, lidar, small_video
    ):
        env = DetectionEnvironment(detectors=detector_pool, reference=lidar)
        frames = small_video.frames[:4]
        env.prefetch(frames)
        before = env.store.stats()
        for frame in frames:
            env.evaluate(frame, [env.full_ensemble])
        after = env.store.stats()
        detector = after.stages["detector"]
        # Evaluation looked detector outputs up without recomputing any.
        assert detector.misses == before.stages["detector"].misses

    def test_prefetch_model_subset(self, detector_pool, lidar, small_video):
        env = DetectionEnvironment(detectors=detector_pool, reference=lidar)
        frame = small_video.frames[0]
        only = env.model_names[0]
        env.prefetch([frame], models=[only], include_reference=False)
        assert env.store.contains("detector", (frame.key, only))
        for other in env.model_names[1:]:
            assert not env.store.contains("detector", (frame.key, other))
        assert not env.store.contains("reference", (frame.key, "lidar-ref"))

    def test_prefetch_unknown_model_rejected(
        self, detector_pool, lidar, small_video
    ):
        env = DetectionEnvironment(detectors=detector_pool, reference=lidar)
        with pytest.raises(KeyError, match="unknown detector"):
            env.prefetch(small_video.frames[:1], models=["resnet-900"])
