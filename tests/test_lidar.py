"""Unit tests for the simulated LiDAR reference model."""

import pytest

from repro.detection.boxes import BBox
from repro.simulation.lidar import (
    LidarBox3D,
    PinholeCamera,
    SimulatedLidar,
    lift_object,
)
from repro.simulation.video import Frame, GroundTruthObject
from repro.simulation.world import generate_video


class TestPinholeCamera:
    def test_project_center(self):
        camera = PinholeCamera(focal_length=1000.0, cx=800.0, cy=450.0)
        u, v = camera.project_point(0.0, 0.0, 10.0)
        assert (u, v) == (800.0, 450.0)

    def test_project_behind_camera_rejected(self):
        with pytest.raises(ValueError):
            PinholeCamera().project_point(0, 0, -1.0)

    def test_back_project_roundtrip(self):
        camera = PinholeCamera()
        x, y, z = camera.back_project(900.0, 500.0, 25.0)
        u, v = camera.project_point(x, y, z)
        assert u == pytest.approx(900.0)
        assert v == pytest.approx(500.0)

    def test_farther_points_project_closer_to_center(self):
        camera = PinholeCamera()
        u_near, _ = camera.project_point(2.0, 0.0, 10.0)
        u_far, _ = camera.project_point(2.0, 0.0, 40.0)
        assert abs(u_far - camera.cx) < abs(u_near - camera.cx)


class TestLift:
    def test_lift_then_project_recovers_box(self, clear_category):
        camera = PinholeCamera()
        obj = GroundTruthObject(0, BBox(600, 300, 900, 500), "car", 20.0, 0.9)
        frame = Frame(0, clear_category)
        box3d = lift_object(obj, camera)
        projected = box3d.project(camera, frame)
        assert projected is not None
        # Projection uses the near face so the box is at least as large as
        # the original; centers should nearly coincide.
        ocx, ocy = obj.box.center
        pcx, pcy = projected.center
        assert abs(ocx - pcx) < 30
        assert abs(ocy - pcy) < 30


class TestLidarBox3D:
    def test_validation(self):
        with pytest.raises(ValueError):
            LidarBox3D(0, 0, -1.0, 1, 1, 1, "car", 0.5)
        with pytest.raises(ValueError):
            LidarBox3D(0, 0, 5.0, 1, 1, 1, "car", 1.5)

    def test_out_of_frame_projection_none(self, clear_category):
        camera = PinholeCamera()
        frame = Frame(0, clear_category)
        box = LidarBox3D(x=500.0, y=0.0, z=10.0, width=1, height=1,
                         depth_extent=1, label="car", score=0.9)
        assert box.project(camera, frame) is None


class TestSimulatedLidar:
    def test_deterministic(self, simple_frame):
        lidar = SimulatedLidar(seed=5)
        a = lidar.detect(simple_frame)
        b = lidar.detect(simple_frame)
        assert a.detections == b.detections
        assert a.inference_time_ms == b.inference_time_ms

    def test_much_faster_than_cameras(self, simple_frame):
        # Section 2.3: c_LiDAR << c_M for every camera model.
        lidar = SimulatedLidar(seed=5)
        time_ms = lidar.detect(simple_frame).inference_time_ms
        assert time_ms < 10.0 < 49.5

    def test_night_insensitivity(self):
        """LiDAR recall barely drops at night (the REF premise)."""
        lidar = SimulatedLidar(seed=5)
        clear_video = generate_video("cv", 80, "clear", seed=13)
        night_video = generate_video("nv", 80, "night", seed=13)

        def recall(video):
            found, total = 0, 0
            for frame in video:
                ids = {
                    d.object_id
                    for d in lidar.detect(frame).detections
                    if d.object_id is not None
                }
                total += len(frame.objects)
                found += sum(1 for o in frame.objects if o.object_id in ids)
            return found / max(total, 1)

        r_clear, r_night = recall(clear_video), recall(night_video)
        assert r_night > r_clear * 0.9

    def test_boxes_within_frame(self, small_video):
        lidar = SimulatedLidar(seed=5)
        for frame in small_video:
            for det in lidar.detect(frame).detections:
                assert 0 <= det.box.x1 <= det.box.x2 <= frame.width
                assert 0 <= det.box.y1 <= det.box.y2 <= frame.height

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SimulatedLidar(detection_skill=1.5)
        with pytest.raises(ValueError):
            SimulatedLidar(base_time_ms=0.0)
        with pytest.raises(ValueError):
            SimulatedLidar(false_positive_rate=-1.0)
