"""Unit tests for the ground-truth world generator."""

import pytest

from repro.simulation.scenes import SCENE_CATEGORIES
from repro.simulation.world import DEFAULT_CLASSES, WorldConfig, generate_video


class TestWorldConfig:
    def test_defaults_valid(self):
        config = WorldConfig()
        assert config.mean_objects > 0

    def test_invalid_distances(self):
        with pytest.raises(ValueError):
            WorldConfig(min_distance=10.0, max_distance=5.0)

    def test_empty_classes_rejected(self):
        with pytest.raises(ValueError):
            WorldConfig(classes=())


class TestGenerateVideo:
    def test_deterministic(self):
        a = generate_video("v", 20, "clear", seed=3)
        b = generate_video("v", 20, "clear", seed=3)
        for fa, fb in zip(a, b, strict=True):
            assert fa.objects == fb.objects

    def test_different_seeds_differ(self):
        a = generate_video("v", 20, "clear", seed=3)
        b = generate_video("v", 20, "clear", seed=4)
        assert any(fa.objects != fb.objects for fa, fb in zip(a, b, strict=True))

    def test_frame_count_and_indices(self):
        video = generate_video("v", 15, "clear", seed=0)
        assert len(video) == 15
        assert [f.index for f in video] == list(range(15))

    def test_boxes_inside_frame(self):
        video = generate_video("v", 40, "clear", seed=1)
        for frame in video:
            for obj in frame.objects:
                assert 0 <= obj.box.x1 <= obj.box.x2 <= frame.width
                assert 0 <= obj.box.y1 <= obj.box.y2 <= frame.height

    def test_labels_from_class_mix(self):
        video = generate_video("v", 40, "clear", seed=1)
        known = {spec.label for spec in DEFAULT_CLASSES}
        for frame in video:
            for obj in frame.objects:
                assert obj.label in known

    def test_object_density_tracks_category(self):
        clear = generate_video("c", 120, "clear", seed=5)
        night = generate_video("n", 120, "night", seed=5)
        mean_clear = sum(len(f.objects) for f in clear) / len(clear)
        mean_night = sum(len(f.objects) for f in night) / len(night)
        # Night scenes are configured sparser (density multiplier 0.7).
        assert mean_night < mean_clear

    def test_tracks_are_coherent(self):
        """An object id seen in consecutive frames moves smoothly."""
        video = generate_video("v", 60, "clear", seed=9)
        last_center = {}
        for frame in video:
            for obj in frame.objects:
                if obj.object_id in last_center:
                    cx, cy = obj.box.center
                    px, py = last_center[obj.object_id]
                    # Per-frame motion is bounded (no teleporting).
                    assert abs(cx - px) < 200
                    assert abs(cy - py) < 200
            last_center = {o.object_id: o.box.center for o in frame.objects}

    def test_visibility_reflects_category(self):
        clear = generate_video("c", 60, "clear", seed=5)
        night = generate_video("n", 60, "night", seed=5)

        def mean_vis(video):
            values = [o.visibility for f in video for o in f.objects]
            return sum(values) / len(values)

        assert mean_vis(night) < mean_vis(clear)

    def test_invalid_num_frames(self):
        with pytest.raises(ValueError):
            generate_video("v", 0, "clear", seed=0)

    def test_category_instance_accepted(self):
        video = generate_video("v", 5, SCENE_CATEGORIES["rainy"], seed=0)
        assert video[0].category.name == "rainy"


class TestCategorySchedule:
    def test_schedule_overrides_frame_category(self):
        from repro.simulation.scenes import SCENE_CATEGORIES

        clear = SCENE_CATEGORIES["clear"]
        night = SCENE_CATEGORIES["night"]
        schedule = [clear] * 5 + [night] * 5
        video = generate_video(
            "sched/v", 10, "clear", seed=1, category_schedule=schedule
        )
        assert video[0].category.name == "clear"
        assert video[9].category.name == "night"

    def test_schedule_changes_visibility_not_population(self):
        """The schedule alters conditions, not the underlying tracks."""
        from repro.simulation.scenes import SCENE_CATEGORIES

        plain = generate_video("sched/w", 12, "clear", seed=4)
        night_sched = generate_video(
            "sched/w", 12, "clear", seed=4,
            category_schedule=[SCENE_CATEGORIES["night"]] * 12,
        )
        for a, b in zip(plain, night_sched, strict=True):
            # Same objects (ids and boxes), different visibility.
            assert [o.object_id for o in a.objects] == [
                o.object_id for o in b.objects
            ]
            for oa, ob in zip(a.objects, b.objects, strict=True):
                assert oa.box == ob.box
                assert ob.visibility <= oa.visibility
