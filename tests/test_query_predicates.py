"""Unit tests for WHERE-expression evaluation."""

import pytest
from tests.conftest import make_detection

from repro.detection.types import FrameDetections
from repro.query.ast import Comparison, CountExpr, ExistsExpr, FieldRef, LogicalExpr
from repro.query.predicates import count_detections, evaluate_expr


@pytest.fixture
def detections():
    return FrameDetections(
        0,
        (
            make_detection(conf=0.9, label="car"),
            make_detection(conf=0.4, label="car"),
            make_detection(conf=0.8, label="pedestrian"),
        ),
    )


class TestCountDetections:
    def test_count_all(self, detections):
        assert count_detections(detections, None, 0.0) == 3

    def test_count_by_label(self, detections):
        assert count_detections(detections, "car", 0.0) == 2

    def test_count_with_floor(self, detections):
        assert count_detections(detections, "car", 0.5) == 1

    def test_count_missing_label(self, detections):
        assert count_detections(detections, "bus", 0.0) == 0


class TestEvaluateExpr:
    def test_count_comparison(self, detections):
        expr = Comparison(CountExpr("car"), ">=", 2)
        assert evaluate_expr(expr, detections, {})

    def test_exists(self, detections):
        assert evaluate_expr(ExistsExpr("pedestrian"), detections, {})
        assert not evaluate_expr(ExistsExpr("bus"), detections, {})

    def test_exists_with_floor(self, detections):
        assert not evaluate_expr(
            ExistsExpr("car", min_confidence=0.95), detections, {}
        )

    def test_field_comparison(self, detections):
        expr = Comparison(FieldRef("frameID"), "<", 10)
        assert evaluate_expr(expr, detections, {"frameid": 5.0})
        assert not evaluate_expr(expr, detections, {"frameid": 15.0})

    def test_unknown_field(self, detections):
        expr = Comparison(FieldRef("bogus"), "=", 1)
        with pytest.raises(KeyError):
            evaluate_expr(expr, detections, {"frameid": 1.0})

    def test_and_or_not(self, detections):
        car2 = Comparison(CountExpr("car"), ">=", 2)
        bus = ExistsExpr("bus")
        assert not evaluate_expr(
            LogicalExpr("and", (car2, bus)), detections, {}
        )
        assert evaluate_expr(LogicalExpr("or", (car2, bus)), detections, {})
        assert evaluate_expr(LogicalExpr("not", (bus,)), detections, {})

    def test_all_comparison_operators(self, detections):
        cases = [
            ("=", 2, True),
            ("!=", 2, False),
            ("<", 3, True),
            ("<=", 2, True),
            (">", 1, True),
            (">=", 3, False),
        ]
        for op, value, expected in cases:
            expr = Comparison(CountExpr("car"), op, value)
            assert evaluate_expr(expr, detections, {}) is expected

    def test_invalid_logical_op_rejected_at_construction(self):
        with pytest.raises(ValueError):
            LogicalExpr("xor", (ExistsExpr("car"), ExistsExpr("bus")))
        with pytest.raises(ValueError):
            LogicalExpr("not", (ExistsExpr("car"), ExistsExpr("bus")))

    def test_invalid_comparison_op_rejected(self):
        with pytest.raises(ValueError):
            Comparison(CountExpr("car"), "~", 1)
