"""Unit tests for Pareto-front utilities (the MOQO extension)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pareto import (
    EnsemblePoint,
    dominates,
    pareto_ensembles,
    pareto_front,
    profile_ensembles,
)


def point(key, accuracy, cost):
    return EnsemblePoint(key=key, accuracy=accuracy, cost=cost)


class TestDominates:
    def test_strictly_better_both(self):
        assert dominates(point(("a",), 0.8, 0.2), point(("b",), 0.5, 0.5))

    def test_better_one_equal_other(self):
        assert dominates(point(("a",), 0.8, 0.5), point(("b",), 0.5, 0.5))
        assert dominates(point(("a",), 0.5, 0.2), point(("b",), 0.5, 0.5))

    def test_equal_points_do_not_dominate(self):
        a = point(("a",), 0.5, 0.5)
        b = point(("b",), 0.5, 0.5)
        assert not dominates(a, b)
        assert not dominates(b, a)

    def test_trade_off_no_domination(self):
        a = point(("a",), 0.8, 0.8)
        b = point(("b",), 0.5, 0.2)
        assert not dominates(a, b)
        assert not dominates(b, a)


class TestParetoFront:
    def test_simple_front(self):
        points = [
            point(("a",), 0.9, 0.9),  # most accurate, most expensive
            point(("b",), 0.6, 0.3),  # trade-off
            point(("c",), 0.3, 0.1),  # cheapest
            point(("d",), 0.5, 0.5),  # dominated by b
        ]
        front = pareto_front(points)
        assert [p.key for p in front] == [("a",), ("b",), ("c",)]

    def test_single_point(self):
        points = [point(("a",), 0.5, 0.5)]
        assert pareto_front(points) == points

    def test_empty(self):
        assert pareto_front([]) == []

    def test_sorted_by_decreasing_accuracy(self):
        points = [
            point(("a",), 0.2, 0.1),
            point(("b",), 0.9, 0.9),
            point(("c",), 0.6, 0.4),
        ]
        accs = [p.accuracy for p in pareto_front(points)]
        assert accs == sorted(accs, reverse=True)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1),
                st.floats(min_value=0, max_value=1),
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=60)
    def test_front_members_are_mutually_nondominated(self, raw):
        points = [
            point((f"e{i}",), acc, cost) for i, (acc, cost) in enumerate(raw)
        ]
        front = pareto_front(points)
        # Nobody on the front dominates anyone else on the front.
        for a in front:
            for b in front:
                if a is not b:
                    assert not dominates(a, b)
        # Everyone off the front is dominated by — or coincides with — a
        # front member (coincident duplicates keep one representative).
        off_front = [p for p in points if p not in front]
        for p in off_front:
            assert any(
                dominates(f, p)
                or (f.accuracy == p.accuracy and f.cost == p.cost)
                for f in front
            )


class TestProfiling:
    def test_profile_covers_lattice(self, environment, small_video):
        points = profile_ensembles(environment, small_video.frames, sample_stride=5)
        assert {p.key for p in points} == set(environment.all_ensembles)
        for p in points:
            assert 0.0 <= p.accuracy <= 1.0
            assert 0.0 <= p.cost <= 1.0

    def test_profiling_does_not_charge(self, environment, small_video):
        profile_ensembles(environment, small_video.frames, sample_stride=5)
        assert environment.clock.total_ms == 0.0

    def test_pareto_ensembles_subset_of_lattice(self, environment, small_video):
        front = pareto_ensembles(environment, small_video.frames, sample_stride=5)
        assert front
        assert set(front).issubset(set(environment.all_ensembles))
        # The front is a strict reduction of the 7-ensemble lattice in any
        # non-degenerate world.
        assert len(front) <= len(environment.all_ensembles)

    def test_invalid_stride(self, environment, small_video):
        with pytest.raises(ValueError):
            profile_ensembles(environment, small_video.frames, sample_stride=0)

    def test_empty_sample(self, environment):
        with pytest.raises(ValueError):
            profile_ensembles(environment, [], sample_stride=1)
