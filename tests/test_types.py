"""Unit tests for Detection / FrameDetections value types."""

import pytest
from tests.conftest import make_detection

from repro.detection.boxes import BBox
from repro.detection.types import Detection, FrameDetections


class TestDetection:
    def test_valid(self):
        det = make_detection()
        assert det.label == "car"
        assert det.confidence == 0.9

    def test_confidence_bounds(self):
        with pytest.raises(ValueError):
            make_detection(conf=1.5)
        with pytest.raises(ValueError):
            make_detection(conf=-0.1)

    def test_empty_label_rejected(self):
        with pytest.raises(ValueError):
            Detection(BBox(0, 0, 1, 1), 0.5, "")

    def test_with_confidence(self):
        det = make_detection(conf=0.9, source="m1")
        updated = det.with_confidence(0.4)
        assert updated.confidence == 0.4
        assert updated.source == "m1"
        assert updated.box == det.box
        assert det.confidence == 0.9  # original untouched

    def test_with_source(self):
        det = make_detection()
        assert det.with_source("m2").source == "m2"


class TestFrameDetections:
    def test_basic_container(self):
        dets = FrameDetections(0, (make_detection(), make_detection(label="bus")))
        assert len(dets) == 2
        assert bool(dets)
        assert dets.labels == ("car", "bus")

    def test_empty(self):
        dets = FrameDetections(3)
        assert len(dets) == 0
        assert not dets

    def test_negative_frame_rejected(self):
        with pytest.raises(ValueError):
            FrameDetections(-1)

    def test_list_coerced_to_tuple(self):
        dets = FrameDetections(0, [make_detection()])
        assert isinstance(dets.detections, tuple)

    def test_filter_confidence(self):
        dets = FrameDetections(
            0, (make_detection(conf=0.9), make_detection(conf=0.2))
        )
        kept = dets.filter_confidence(0.5)
        assert len(kept) == 1
        assert kept.detections[0].confidence == 0.9

    def test_filter_label(self):
        dets = FrameDetections(
            0, (make_detection(label="car"), make_detection(label="bus"))
        )
        assert kept_labels(dets.filter_label("bus")) == ("bus",)

    def test_by_label_groups(self):
        dets = FrameDetections(
            0,
            (
                make_detection(label="car"),
                make_detection(label="car"),
                make_detection(label="bus"),
            ),
        )
        groups = dets.by_label()
        assert sorted(groups) == ["bus", "car"]
        assert len(groups["car"]) == 2

    def test_sorted_by_confidence(self):
        dets = FrameDetections(
            0, (make_detection(conf=0.2), make_detection(conf=0.8))
        )
        ordered = dets.sorted_by_confidence()
        confs = [d.confidence for d in ordered]
        assert confs == sorted(confs, reverse=True)

    def test_with_source_propagates(self):
        dets = FrameDetections(0, (make_detection(),)).with_source("ens")
        assert dets.source == "ens"
        assert all(d.source == "ens" for d in dets)

    def test_merged_with(self):
        a = FrameDetections(1, (make_detection(),))
        b = FrameDetections(1, (make_detection(label="bus"),))
        merged = a.merged_with(b)
        assert len(merged) == 2

    def test_merged_with_frame_mismatch(self):
        a = FrameDetections(1, (make_detection(),))
        b = FrameDetections(2, (make_detection(),))
        with pytest.raises(ValueError):
            a.merged_with(b)

    def test_pool(self):
        parts = [
            FrameDetections(5, (make_detection(),)),
            FrameDetections(5, (make_detection(label="bus"),)),
        ]
        pooled = FrameDetections.pool(5, parts)
        assert len(pooled) == 2
        assert pooled.frame_index == 5

    def test_pool_frame_mismatch(self):
        with pytest.raises(ValueError):
            FrameDetections.pool(1, [FrameDetections(2, (make_detection(),))])


def kept_labels(dets: FrameDetections):
    return tuple(d.label for d in dets)
