"""Unit tests for the bounding-box algebra."""


import numpy as np
import pytest

from repro.detection.boxes import (
    BBox,
    array_to_boxes,
    average_boxes,
    boxes_to_array,
    iou,
    iou_matrix,
)


class TestBBoxConstruction:
    def test_valid_box(self):
        box = BBox(1.0, 2.0, 3.0, 5.0)
        assert box.width == 2.0
        assert box.height == 3.0
        assert box.area == 6.0

    def test_degenerate_box_allowed(self):
        box = BBox(1.0, 1.0, 1.0, 1.0)
        assert box.area == 0.0

    def test_inverted_x_rejected(self):
        with pytest.raises(ValueError):
            BBox(5.0, 0.0, 1.0, 1.0)

    def test_inverted_y_rejected(self):
        with pytest.raises(ValueError):
            BBox(0.0, 5.0, 1.0, 1.0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            BBox(float("nan"), 0.0, 1.0, 1.0)

    def test_inf_rejected(self):
        with pytest.raises(ValueError):
            BBox(0.0, 0.0, float("inf"), 1.0)

    def test_from_center(self):
        box = BBox.from_center(10.0, 20.0, 4.0, 6.0)
        assert box.as_tuple() == (8.0, 17.0, 12.0, 23.0)
        assert box.center == (10.0, 20.0)

    def test_from_center_negative_size_rejected(self):
        with pytest.raises(ValueError):
            BBox.from_center(0, 0, -1.0, 2.0)

    def test_from_xywh(self):
        box = BBox.from_xywh(1.0, 2.0, 3.0, 4.0)
        assert box.as_tuple() == (1.0, 2.0, 4.0, 6.0)

    def test_frozen(self):
        box = BBox(0, 0, 1, 1)
        with pytest.raises(AttributeError):
            box.x1 = 5.0


class TestIoU:
    def test_identical_boxes(self):
        box = BBox(0, 0, 10, 10)
        assert box.iou(box) == pytest.approx(1.0)

    def test_disjoint_boxes(self):
        assert iou(BBox(0, 0, 1, 1), BBox(5, 5, 6, 6)) == 0.0

    def test_touching_boxes_zero_iou(self):
        assert iou(BBox(0, 0, 1, 1), BBox(1, 0, 2, 1)) == 0.0

    def test_half_overlap(self):
        a = BBox(0, 0, 10, 10)
        b = BBox(5, 0, 15, 10)
        # intersection 50, union 150
        assert a.iou(b) == pytest.approx(1.0 / 3.0)

    def test_contained_box(self):
        outer = BBox(0, 0, 10, 10)
        inner = BBox(2, 2, 4, 4)
        assert outer.iou(inner) == pytest.approx(inner.area / outer.area)

    def test_degenerate_boxes(self):
        a = BBox(1, 1, 1, 1)
        assert a.iou(a) == 0.0

    def test_symmetry(self):
        a = BBox(0, 0, 7, 3)
        b = BBox(2, 1, 9, 8)
        assert a.iou(b) == pytest.approx(b.iou(a))


class TestBoxOps:
    def test_intersection_area(self):
        a = BBox(0, 0, 4, 4)
        b = BBox(2, 2, 6, 6)
        assert a.intersection(b) == 4.0

    def test_union_area(self):
        a = BBox(0, 0, 4, 4)
        b = BBox(2, 2, 6, 6)
        assert a.union_area(b) == 16 + 16 - 4

    def test_enclosing(self):
        a = BBox(0, 0, 2, 2)
        b = BBox(5, 5, 7, 9)
        assert a.enclosing(b).as_tuple() == (0, 0, 7, 9)

    def test_translate(self):
        box = BBox(1, 1, 2, 2).translate(3, -1)
        assert box.as_tuple() == (4, 0, 5, 1)

    def test_scale_doubles_area_factor_squared(self):
        box = BBox(0, 0, 4, 4).scale(2.0)
        assert box.area == pytest.approx(64.0)
        assert box.center == (2.0, 2.0)

    def test_scale_invalid(self):
        with pytest.raises(ValueError):
            BBox(0, 0, 1, 1).scale(0.0)

    def test_clip_inside_noop(self):
        box = BBox(1, 1, 5, 5).clip(10, 10)
        assert box.as_tuple() == (1, 1, 5, 5)

    def test_clip_partially_outside(self):
        box = BBox(-5, -5, 5, 5).clip(10, 10)
        assert box.as_tuple() == (0, 0, 5, 5)

    def test_clip_fully_outside_collapses(self):
        box = BBox(20, 20, 30, 30).clip(10, 10)
        assert box.area == 0.0

    def test_contains_point(self):
        box = BBox(0, 0, 10, 10)
        assert box.contains_point(5, 5)
        assert box.contains_point(0, 0)  # inclusive edge
        assert not box.contains_point(11, 5)

    def test_contains_box(self):
        assert BBox(0, 0, 10, 10).contains_box(BBox(1, 1, 9, 9))
        assert not BBox(0, 0, 10, 10).contains_box(BBox(5, 5, 11, 9))


class TestArrays:
    def test_roundtrip(self):
        boxes = [BBox(0, 0, 1, 1), BBox(2, 3, 4, 5)]
        assert array_to_boxes(boxes_to_array(boxes)) == boxes

    def test_empty_array(self):
        assert boxes_to_array([]).shape == (0, 4)
        assert array_to_boxes(np.zeros((0, 4))) == []

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            array_to_boxes(np.zeros((3, 3)))

    def test_iou_matrix_matches_scalar(self):
        a = [BBox(0, 0, 10, 10), BBox(5, 5, 15, 15)]
        b = [BBox(0, 0, 10, 10), BBox(100, 100, 110, 110), BBox(8, 8, 12, 12)]
        matrix = iou_matrix(a, b)
        assert matrix.shape == (2, 3)
        for i, box_a in enumerate(a):
            for j, box_b in enumerate(b):
                assert matrix[i, j] == pytest.approx(box_a.iou(box_b))

    def test_iou_matrix_empty(self):
        assert iou_matrix([], [BBox(0, 0, 1, 1)]).shape == (0, 1)
        assert iou_matrix([BBox(0, 0, 1, 1)], []).shape == (1, 0)


class TestAverageBoxes:
    def test_uniform_average(self):
        avg = average_boxes([BBox(0, 0, 2, 2), BBox(2, 2, 4, 4)])
        assert avg.as_tuple() == (1, 1, 3, 3)

    def test_weighted_average(self):
        avg = average_boxes(
            [BBox(0, 0, 2, 2), BBox(2, 2, 4, 4)], weights=[3.0, 1.0]
        )
        assert avg.as_tuple() == (0.5, 0.5, 2.5, 2.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_boxes([])

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            average_boxes([BBox(0, 0, 1, 1)], weights=[0.0])

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            average_boxes([BBox(0, 0, 1, 1), BBox(0, 0, 2, 2)], weights=[1, -1])

    def test_mismatched_weights_rejected(self):
        with pytest.raises(ValueError):
            average_boxes([BBox(0, 0, 1, 1)], weights=[1.0, 2.0])
