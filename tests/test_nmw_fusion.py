"""Unit tests for NMW, Softer-NMS and ConsensusFusion."""

import pytest

from repro.detection.boxes import BBox
from repro.detection.types import Detection, FrameDetections
from repro.ensembling.fusion import ConsensusFusion
from repro.ensembling.nmw import NonMaximumWeighted
from repro.ensembling.softer_nms import SofterNMS


def frame(dets, index=0, source=None):
    return FrameDetections(index, tuple(dets), source)


def det(x1, y1, x2, y2, conf, label="car", source="m1"):
    return Detection(BBox(x1, y1, x2, y2), conf, label, source=source)


class TestNMW:
    def test_fused_confidence_is_cluster_max(self):
        nmw = NonMaximumWeighted()
        result = nmw.fuse(
            [
                frame([det(0, 0, 10, 10, 0.9, source="a")]),
                frame([det(1, 0, 11, 10, 0.5, source="b")]),
            ]
        )
        assert len(result) == 1
        assert result.detections[0].confidence == 0.9

    def test_coordinates_pulled_toward_best(self):
        nmw = NonMaximumWeighted()
        result = nmw.fuse(
            [
                frame([det(0, 0, 10, 10, 0.9, source="a")]),
                frame([det(2, 0, 12, 10, 0.1, source="b")]),
            ]
        )
        merged = result.detections[0]
        # Weight of the best box dominates: x1 closer to 0 than to 1.
        assert merged.box.x1 < 0.5

    def test_disjoint_preserved(self):
        nmw = NonMaximumWeighted()
        result = nmw.fuse(
            [frame([det(0, 0, 10, 10, 0.9), det(100, 100, 110, 110, 0.8)])]
        )
        assert len(result) == 2

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            NonMaximumWeighted(iou_threshold=2.0)


class TestSofterNMS:
    def test_refines_survivor_coordinates(self):
        softer = SofterNMS(vote_iou_threshold=0.5)
        result = softer.fuse(
            [
                frame([det(0, 0, 10, 10, 0.9, source="a")]),
                frame([det(2, 0, 12, 10, 0.85, source="b")]),
            ]
        )
        assert len(result) == 1
        merged = result.detections[0]
        # Voting pulls the box off the survivor's original corner.
        assert merged.box.x1 > 0.0
        assert merged.confidence == 0.9  # confidence untouched

    def test_isolated_box_unchanged(self):
        softer = SofterNMS()
        result = softer.fuse([frame([det(0, 0, 10, 10, 0.9)])])
        assert result.detections[0].box == BBox(0, 0, 10, 10)

    def test_suppression_still_applies(self):
        softer = SofterNMS(iou_threshold=0.5)
        result = softer.fuse(
            [frame([det(0, 0, 10, 10, 0.9), det(0, 0, 10, 10, 0.5)])]
        )
        assert len(result) == 1

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            SofterNMS(sigma=-1.0)


class TestConsensusFusion:
    def test_agreement_boosts_confidence(self):
        fusion = ConsensusFusion()
        result = fusion.fuse(
            [
                frame([det(0, 0, 10, 10, 0.6, source="a")]),
                frame([det(0, 0, 10, 10, 0.6, source="b")]),
            ]
        )
        merged = result.detections[0]
        # 1 - 0.4 * 0.4 = 0.84 > either input confidence.
        assert merged.confidence == pytest.approx(0.84)

    def test_min_votes_filters_lone_detections(self):
        fusion = ConsensusFusion(min_votes=2)
        result = fusion.fuse(
            [
                frame([det(0, 0, 10, 10, 0.9, source="a")]),
                frame([det(100, 100, 110, 110, 0.9, source="b")]),
            ]
        )
        # Each box seen by a single model only.
        assert len(result) == 0

    def test_min_votes_capped_by_pool_size(self):
        fusion = ConsensusFusion(min_votes=3)
        result = fusion.fuse([frame([det(0, 0, 10, 10, 0.9, source="a")])])
        # Single-model ensembles can still produce output.
        assert len(result) == 1

    def test_one_vote_per_model(self):
        fusion = ConsensusFusion()
        result = fusion.fuse(
            [
                frame(
                    [
                        det(0, 0, 10, 10, 0.6, source="a"),
                        det(1, 0, 11, 10, 0.5, source="a"),
                    ]
                ),
            ]
        )
        merged = result.detections[0]
        # Same model twice: only its best detection votes -> conf 0.6.
        assert merged.confidence == pytest.approx(0.6)

    def test_invalid_min_votes(self):
        with pytest.raises(ValueError):
            ConsensusFusion(min_votes=0)
