"""Tests for the resilient execution layer (retry, timeout, breaker)."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.engine.backends import InferenceJob, SerialBackend
from repro.engine.resilience import (
    BreakerPolicy,
    CircuitBreaker,
    FaultStats,
    ResilientBackend,
    RetryPolicy,
)


class _Model:
    """A scriptable model: fails the first ``fail_times`` calls."""

    def __init__(self, name="m", fail_times=0, latency_ms=5.0):
        self.name = name
        self.fail_times = fail_times
        self.latency_ms = latency_ms
        self.calls = 0

    def detect(self, frame):
        self.calls += 1
        if self.calls <= self.fail_times:
            raise RuntimeError(f"{self.name} scripted failure {self.calls}")
        return SimpleNamespace(inference_time_ms=self.latency_ms)


def _frame(index=0):
    return SimpleNamespace(index=index, key=f"frame-{index}")


def _job(model, index=0):
    return InferenceJob(model, _frame(index))


def _backend(**kwargs):
    kwargs.setdefault("retry", RetryPolicy(max_attempts=3, jitter_ms=0.0))
    return ResilientBackend(SerialBackend(), **kwargs)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_ms=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy().delay_ms("m", "f", 0)

    def test_exponential_backoff_without_jitter(self):
        policy = RetryPolicy(
            backoff_base_ms=2.0, backoff_multiplier=3.0, jitter_ms=0.0
        )
        assert policy.delay_ms("m", "f", 1) == 2.0
        assert policy.delay_ms("m", "f", 2) == 6.0
        assert policy.delay_ms("m", "f", 3) == 18.0

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base_ms=1.0, jitter_ms=0.5, seed=11)
        first = policy.delay_ms("m", "frame-0", 1)
        assert first == policy.delay_ms("m", "frame-0", 1)
        assert 1.0 <= first <= 1.5
        # Distinct (model, frame, attempt) keys draw distinct jitter.
        others = {
            policy.delay_ms("m", "frame-0", 2) - 2.0,
            policy.delay_ms("m", "frame-1", 1) - 1.0,
            policy.delay_ms("n", "frame-0", 1) - 1.0,
        }
        assert len(others | {first - 1.0}) == 4


class TestRetryExecution:
    def test_transient_failure_recovers(self):
        model = _Model(fail_times=2)
        backend = _backend()
        [result] = backend.run([_job(model)])
        assert result.ok
        assert result.attempts == 3
        assert model.calls == 3
        stats = backend.stats()
        assert stats.retries == 2
        assert stats.recoveries == 1
        assert stats.failures == 2

    def test_attempt_budget_exhausted(self):
        model = _Model(fail_times=10)
        backend = _backend()
        [result] = backend.run([_job(model)])
        assert not result.ok
        assert result.status == "failed"
        assert result.attempts == 3
        assert "scripted failure" in result.error
        assert backend.stats().recoveries == 0

    def test_single_attempt_disables_retry(self):
        model = _Model(fail_times=1)
        backend = _backend(retry=RetryPolicy(max_attempts=1))
        [result] = backend.run([_job(model)])
        assert result.status == "failed"
        assert model.calls == 1

    def test_backoff_goes_through_sleep_seam(self):
        delays = []
        policy = RetryPolicy(
            max_attempts=3,
            backoff_base_ms=4.0,
            backoff_multiplier=2.0,
            jitter_ms=0.0,
        )
        backend = ResilientBackend(
            SerialBackend(), retry=policy, sleep=delays.append
        )
        backend.run([_job(_Model(fail_times=2))])
        assert delays == [0.004, 0.008]  # seconds

    def test_ok_results_pass_through_unchanged(self):
        model = _Model()
        backend = _backend()
        [result] = backend.run([_job(model)])
        assert result.ok
        assert result.attempts == 1
        assert result.output.inference_time_ms == 5.0
        assert backend.stats().attempts == 1


class TestTimeout:
    def test_simulated_latency_timeout(self):
        backend = _backend(timeout_ms=10.0)
        [result] = backend.run([_job(_Model(latency_ms=50.0))])
        assert result.status == "timeout"
        assert result.output is None
        assert result.attempts == 3  # each over-latency attempt retried
        assert backend.stats().timeouts == 3

    def test_latency_under_timeout_is_ok(self):
        backend = _backend(timeout_ms=10.0)
        [result] = backend.run([_job(_Model(latency_ms=9.0))])
        assert result.ok

    def test_timeout_validation(self):
        with pytest.raises(ValueError, match="timeout_ms"):
            _backend(timeout_ms=0.0)


class TestCircuitBreaker:
    def test_lifecycle(self):
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=2, cooldown_batches=2)
        )
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allows()
        breaker.tick()
        assert breaker.state == "open"
        breaker.tick()
        assert breaker.state == "half-open"
        assert breaker.allows()
        breaker.record_failure()  # failed probe re-opens immediately
        assert breaker.state == "open"
        breaker.tick()
        breaker.tick()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.opens == 2

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerPolicy(cooldown_batches=0)

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=2))
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_admits_exactly_one_probe(self):
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, cooldown_batches=1)
        )
        breaker.record_failure()
        breaker.tick()
        assert breaker.state == "half-open"
        # allows() is read-only; it never reserves the probe slot.
        assert breaker.allows() and breaker.allows()
        assert breaker.try_admit()
        assert not breaker.try_admit()  # the slot is taken
        assert breaker.allows()  # still reported as admissible state
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.try_admit()  # closed admits freely again

    def test_failed_probe_frees_slot_after_reopen(self):
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, cooldown_batches=1)
        )
        breaker.record_failure()
        breaker.tick()
        assert breaker.try_admit()
        breaker.record_failure()  # probe failed: open again
        assert breaker.state == "open"
        assert not breaker.try_admit()
        breaker.tick()
        assert breaker.state == "half-open"
        assert breaker.try_admit()  # next cooldown offers a fresh probe

    def test_transition_callback_fires_on_change_only(self):
        transitions = []
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, cooldown_batches=2),
            on_transition=lambda old, new: transitions.append((old, new)),
        )
        breaker.record_failure()
        breaker.tick()  # cooldown tick 1: still open, no transition
        breaker.tick()  # tick 2: half-open
        breaker.record_success()
        assert transitions == [
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
        ]


class TestBreakerExecution:
    def _failing_backend(self):
        return ResilientBackend(
            SerialBackend(),
            retry=RetryPolicy(max_attempts=1),
            breaker=BreakerPolicy(failure_threshold=2, cooldown_batches=2),
        )

    def test_open_circuit_skips_jobs(self):
        model = _Model(fail_times=10**6)
        backend = self._failing_backend()
        backend.run([_job(model, 0)])
        backend.run([_job(model, 1)])  # second consecutive failure: opens
        assert backend.breaker_state("m") == "open"
        assert backend.open_detectors() == frozenset({"m"})
        calls_before = model.calls
        [skipped] = backend.run([_job(model, 2)])
        assert skipped.status == "skipped-open-circuit"
        assert skipped.attempts == 0
        assert model.calls == calls_before  # the model was never touched
        assert backend.stats().breaker_skips == 1
        assert backend.stats().breaker_opens == 1

    def test_half_open_probe_heals(self):
        model = _Model(fail_times=2)
        backend = self._failing_backend()
        backend.run([_job(model, 0)])
        backend.run([_job(model, 1)])
        assert backend.breaker_state("m") == "open"
        [skipped] = backend.run([_job(model, 2)])  # tick 1: still open
        assert skipped.status == "skipped-open-circuit"
        assert backend.breaker_state("m") == "open"
        [probe] = backend.run([_job(model, 3)])  # tick 2: probe admitted
        assert probe.ok
        assert backend.breaker_state("m") == "closed"
        assert backend.open_detectors() == frozenset()

    def test_half_open_not_reported_as_open(self):
        model = _Model(fail_times=10**6)
        backend = self._failing_backend()
        backend.run([_job(model, 0)])
        backend.run([_job(model, 1)])
        backend.run([_job(model, 2)])  # cooldown tick 1
        backend.run([_job(model, 3)])  # tick 2 → half-open probe (fails)
        # After the failed probe the circuit is open again.
        assert backend.breaker_state("m") == "open"
        assert backend.stats().breaker_opens == 2

    def test_batch_snapshot_isolates_jobs_within_one_batch(self):
        """Failures inside a batch must not skip later jobs of the same
        batch — breaker decisions are taken on the batch snapshot."""
        model = _Model(fail_times=10**6)
        backend = ResilientBackend(
            SerialBackend(),
            retry=RetryPolicy(max_attempts=1),
            breaker=BreakerPolicy(failure_threshold=1, cooldown_batches=5),
        )
        results = backend.run([_job(model, 0), _job(model, 1)])
        assert [r.status for r in results] == ["failed", "failed"]
        assert backend.stats().breaker_skips == 0

    def test_results_keep_job_order_with_skips(self):
        bad = _Model(name="bad", fail_times=10**6)
        good = _Model(name="good")
        backend = self._failing_backend()
        backend.run([_job(bad, 0)])
        backend.run([_job(bad, 1)])
        results = backend.run([_job(good, 2), _job(bad, 2), _job(good, 2)])
        assert [r.status for r in results] == [
            "ok",
            "skipped-open-circuit",
            "ok",
        ]

    def test_half_open_single_probe_under_thread_backend(self):
        """Two workers hitting a half-open circuit in the same batch must
        admit exactly one probe; the other job is skipped, not raced in.

        Regression test: admission used to consult the read-only
        ``allows()`` per job, so a two-job batch against a half-open
        circuit dispatched both jobs as probes."""
        from repro.engine.backends import ThreadPoolBackend

        model = _Model(fail_times=2)
        with ThreadPoolBackend(workers=2) as inner:
            backend = ResilientBackend(
                inner,
                retry=RetryPolicy(max_attempts=1),
                breaker=BreakerPolicy(failure_threshold=2, cooldown_batches=1),
            )
            backend.run([_job(model, 0)])
            backend.run([_job(model, 1)])  # opens the circuit
            assert backend.breaker_state("m") == "open"
            calls_before = model.calls
            # One batch, two jobs of the half-open model, two live workers.
            results = backend.run([_job(model, 2), _job(model, 3)])
            statuses = sorted(r.status for r in results)
            assert statuses == ["ok", "skipped-open-circuit"]
            assert model.calls == calls_before + 1  # exactly one probe ran
            assert backend.breaker_state("m") == "closed"  # probe healed it

    def test_half_open_single_probe_same_frame_jobs(self):
        """The guarantee holds even when both jobs are identical
        (same model, same frame) — the second is refused, not deduped."""
        model = _Model(fail_times=2)
        backend = ResilientBackend(
            SerialBackend(),
            retry=RetryPolicy(max_attempts=1),
            breaker=BreakerPolicy(failure_threshold=2, cooldown_batches=1),
        )
        backend.run([_job(model, 0)])
        backend.run([_job(model, 1)])
        calls_before = model.calls
        results = backend.run([_job(model, 2), _job(model, 2)])
        assert sorted(r.status for r in results) == [
            "ok",
            "skipped-open-circuit",
        ]
        assert model.calls == calls_before + 1


class TestBackendSurface:
    def test_name_and_context_manager(self):
        with _backend() as backend:
            assert backend.name == "resilient-serial"

    def test_stats_snapshot_is_immutable(self):
        backend = _backend()
        snapshot = backend.stats()
        assert snapshot == FaultStats()
        backend.run([_job(_Model(fail_times=1))])
        assert snapshot == FaultStats()  # old snapshot unchanged
        assert backend.stats().retries == 1

    def test_as_dict_round_trip(self):
        stats = FaultStats(attempts=3, failures=1, retries=1, recoveries=1)
        payload = stats.as_dict()
        assert payload["attempts"] == 3
        assert FaultStats(**payload) == stats
