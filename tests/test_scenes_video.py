"""Unit tests for scene categories and video value types."""

import pytest

from repro.detection.boxes import BBox
from repro.simulation.scenes import SCENE_CATEGORIES, SceneCategory, get_category
from repro.simulation.video import Frame, GroundTruthObject, Video


class TestSceneCategories:
    def test_paper_categories_exist(self):
        for name in ("clear", "night", "rainy", "snow", "overcast"):
            assert name in SCENE_CATEGORIES

    def test_night_is_hardest_for_cameras(self):
        assert (
            SCENE_CATEGORIES["night"].visibility
            < SCENE_CATEGORIES["rainy"].visibility
            < SCENE_CATEGORIES["clear"].visibility
        )

    def test_lidar_barely_affected_by_darkness(self):
        night = SCENE_CATEGORIES["night"]
        # The premise of REF := LiDAR (Section 2.3): lidar visibility at
        # night stays near clear-weather levels while camera visibility
        # collapses.
        assert night.lidar_visibility > 0.9
        assert night.visibility < 0.7

    def test_get_category_unknown(self):
        with pytest.raises(KeyError, match="unknown scene category"):
            get_category("volcanic")

    def test_invalid_category_values(self):
        with pytest.raises(ValueError):
            SceneCategory("bad", 1.5, 1.0, 0.9, 0.9, 1.0)
        with pytest.raises(ValueError):
            SceneCategory("", 0.9, 1.0, 0.9, 0.9, 1.0)


class TestGroundTruthObject:
    def test_valid(self):
        obj = GroundTruthObject(0, BBox(0, 0, 10, 10), "car", 10.0, 0.9)
        assert obj.label == "car"

    def test_as_detection(self):
        obj = GroundTruthObject(7, BBox(0, 0, 10, 10), "car", 10.0, 0.9)
        det = obj.as_detection()
        assert det.confidence == 1.0
        assert det.object_id == 7
        assert det.source == "ground_truth"

    def test_invalid_distance(self):
        with pytest.raises(ValueError):
            GroundTruthObject(0, BBox(0, 0, 1, 1), "car", 0.0, 0.9)

    def test_invalid_visibility(self):
        with pytest.raises(ValueError):
            GroundTruthObject(0, BBox(0, 0, 1, 1), "car", 5.0, 1.2)


class TestFrame:
    def test_key_is_unique_per_video_and_index(self, clear_category):
        a = Frame(0, clear_category, video_name="v1")
        b = Frame(1, clear_category, video_name="v1")
        c = Frame(0, clear_category, video_name="v2")
        assert len({a.key, b.key, c.key}) == 3

    def test_ground_truth_detections(self, simple_frame):
        dets = simple_frame.ground_truth_detections()
        assert len(dets) == 3
        assert all(d.confidence == 1.0 for d in dets)

    def test_with_index_preserves_content(self, simple_frame):
        moved = simple_frame.with_index(9, video_name="other")
        assert moved.index == 9
        assert moved.objects == simple_frame.objects

    def test_negative_index_rejected(self, clear_category):
        with pytest.raises(ValueError):
            Frame(-1, clear_category)


class TestVideo:
    def _make(self, n, category, name="v"):
        return Video(
            name=name,
            frames=tuple(Frame(i, category, video_name=name) for i in range(n)),
        )

    def test_len_iter_getitem(self, clear_category):
        video = self._make(5, clear_category)
        assert len(video) == 5
        assert video[2].index == 2
        assert [f.index for f in video] == [0, 1, 2, 3, 4]

    def test_non_contiguous_indices_rejected(self, clear_category):
        with pytest.raises(ValueError, match="contiguous"):
            Video("v", (Frame(1, clear_category),))

    def test_slice_reindexes(self, clear_category):
        video = self._make(10, clear_category)
        part = video.slice(3, 7)
        assert len(part) == 4
        assert [f.index for f in part] == [0, 1, 2, 3]

    def test_categories_count(self, clear_category, night_category):
        frames = tuple(
            Frame(i, clear_category if i < 3 else night_category)
            for i in range(5)
        )
        video = Video("v", frames)
        assert video.categories() == {"clear": 3, "night": 2}

    def test_concatenate_marks_breakpoints(self, clear_category, night_category):
        a = self._make(4, clear_category, "a")
        b = self._make(3, night_category, "b")
        merged = Video.concatenate("ab", [a, b])
        assert len(merged) == 7
        assert merged.breakpoints == (4,)
        assert [f.index for f in merged] == list(range(7))

    def test_concatenate_without_breakpoints(self, clear_category):
        a = self._make(2, clear_category, "a")
        b = self._make(2, clear_category, "b")
        merged = Video.concatenate("ab", [a, b], mark_breakpoints=False)
        assert merged.breakpoints == ()

    def test_empty_name_rejected(self, clear_category):
        with pytest.raises(ValueError):
            Video("", (Frame(0, clear_category),))
