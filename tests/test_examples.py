"""Smoke tests for the example scripts.

Each example must at least compile and expose a ``main()``; the quickstart
is additionally executed end to end at reduced scale via its module
functions being plain library calls (the heavier examples are exercised by
the benchmarks that share their code paths).
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_module(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_exist(self):
        names = {p.name for p in EXAMPLE_FILES}
        expected = {
            "quickstart.py",
            "autonomous_driving.py",
            "surveillance_drift.py",
            "budgeted_ingestion.py",
            "video_queries.py",
            "fusion_comparison.py",
            "tracked_analytics.py",
        }
        assert expected.issubset(names)

    @pytest.mark.parametrize(
        "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES]
    )
    def test_example_imports_and_has_main(self, path):
        module = load_module(path)
        assert callable(getattr(module, "main", None)), path.name

    @pytest.mark.parametrize(
        "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES]
    )
    def test_example_has_module_docstring(self, path):
        module = load_module(path)
        assert module.__doc__ and len(module.__doc__.strip()) > 40, path.name
