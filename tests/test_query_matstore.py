"""Tests for the persistent materialized detection store."""

from __future__ import annotations

import json

import pytest
from tests.conftest import make_detection

from repro.detection.types import FrameDetections
from repro.query.matstore import (
    FORMAT_VERSION,
    MATERIALIZED_STAGES,
    MaterializationError,
    MaterializedDetectionStore,
)
from repro.simulation.detectors import DetectorOutput


def _sample_output() -> DetectorOutput:
    detections = FrameDetections(
        frame_index=3,
        detections=(
            make_detection(label="car", conf=0.875, x1=10.5, y1=20.25),
            make_detection(label="bus", conf=0.5, x1=0.0, y1=1.0, source="a"),
        ),
        source="det-a",
    )
    return DetectorOutput(detections=detections, inference_time_ms=12.125)


class TestRoundTrip:
    def test_detector_output_roundtrip_across_instances(self, tmp_path):
        original = _sample_output()
        with MaterializedDetectionStore(tmp_path) as store:
            store.store("detector", ("vid#3", "det-a"), original)
        reopened = MaterializedDetectionStore(tmp_path)
        value = reopened.load("detector", ("vid#3", "det-a"))
        assert value == original  # bit-for-bit: dataclass equality on floats

    def test_every_stage_roundtrips(self, tmp_path):
        output = _sample_output()
        keys = {
            "detector": ("vid#0", "det-a"),
            "reference": ("vid#0", "lidar-ref"),
            "fused": ("vid#0", ("det-a", "det-b"), "wbf()"),
            "est_ap": ("vid#0", ("det-a",), "wbf()|iou=0.5|ref=lidar-ref"),
            "true_ap": ("vid#0", ("det-a",), "wbf()|iou=0.5"),
        }
        values = {
            "detector": output,
            "reference": output,
            "fused": output.detections,
            "est_ap": 0.6251278459354782,
            "true_ap": 0.1,
        }
        with MaterializedDetectionStore(tmp_path) as store:
            for stage in MATERIALIZED_STAGES:
                store.store(stage, keys[stage], values[stage])
        reopened = MaterializedDetectionStore(tmp_path)
        for stage in MATERIALIZED_STAGES:
            assert reopened.load(stage, keys[stage]) == values[stage]

    def test_tuple_keys_survive_json(self, tmp_path):
        """Ensemble keys (nested tuples) must decode back hash-equal."""
        key = ("vid#7", ("a", "b", "c"), "wbf(conf=0.1)")
        with MaterializedDetectionStore(tmp_path) as store:
            store.store("est_ap", key, 0.25)
        reopened = MaterializedDetectionStore(tmp_path)
        assert reopened.load("est_ap", key) == 0.25

    def test_duplicate_store_is_idempotent(self, tmp_path):
        with MaterializedDetectionStore(tmp_path) as store:
            store.store("true_ap", ("v#0", ("a",), "t"), 0.5)
            store.store("true_ap", ("v#0", ("a",), "t"), 0.5)
            assert store.stats().stores == 1
        segment = next(tmp_path.glob("segment-*.jsonl"))
        assert len(segment.read_text().splitlines()) == 1

    def test_unknown_stage_rejected(self, tmp_path):
        store = MaterializedDetectionStore(tmp_path)
        assert not store.accepts("bogus")
        with pytest.raises(ValueError):
            store.store("bogus", "k", 1.0)


class TestIntegrity:
    def test_corrupt_record_skipped_and_counted(self, tmp_path):
        with MaterializedDetectionStore(tmp_path) as store:
            store.store("true_ap", ("v#0", ("a",), "t"), 0.5)
            store.store("true_ap", ("v#1", ("a",), "t"), 0.7)
        segment = next(tmp_path.glob("segment-*.jsonl"))
        lines = segment.read_text().splitlines()
        # Flip the stored value without updating the checksum.
        tampered = json.loads(lines[0])
        tampered["value"] = 0.9999
        segment.write_text(json.dumps(tampered) + "\n" + lines[1] + "\n")
        reopened = MaterializedDetectionStore(tmp_path)
        assert reopened.load("true_ap", ("v#0", ("a",), "t")) is None
        assert reopened.load("true_ap", ("v#1", ("a",), "t")) == 0.7
        assert reopened.stats().corrupt_records == 1

    def test_torn_write_skipped(self, tmp_path):
        with MaterializedDetectionStore(tmp_path) as store:
            store.store("true_ap", ("v#0", ("a",), "t"), 0.5)
        segment = next(tmp_path.glob("segment-*.jsonl"))
        intact = segment.read_text()
        segment.write_text(intact + '{"stage": "true_ap", "ke')
        reopened = MaterializedDetectionStore(tmp_path)
        assert reopened.load("true_ap", ("v#0", ("a",), "t")) == 0.5
        assert reopened.stats().corrupt_records == 1

    def test_blank_lines_ignored(self, tmp_path):
        with MaterializedDetectionStore(tmp_path) as store:
            store.store("true_ap", ("v#0", ("a",), "t"), 0.5)
        segment = next(tmp_path.glob("segment-*.jsonl"))
        segment.write_text(segment.read_text() + "\n\n")
        reopened = MaterializedDetectionStore(tmp_path)
        assert reopened.stats().corrupt_records == 0
        assert len(reopened) == 1


class TestVersioning:
    def test_manifest_written_on_create(self, tmp_path):
        MaterializedDetectionStore(tmp_path)
        manifest = json.loads((tmp_path / "MANIFEST.json").read_text())
        assert manifest["format_version"] == FORMAT_VERSION

    def test_future_version_refused(self, tmp_path):
        (tmp_path / "MANIFEST.json").write_text(
            json.dumps({"format_version": FORMAT_VERSION + 1})
        )
        with pytest.raises(MaterializationError, match="format_version"):
            MaterializedDetectionStore(tmp_path)

    def test_garbage_manifest_refused(self, tmp_path):
        (tmp_path / "MANIFEST.json").write_text("not json at all")
        with pytest.raises(MaterializationError):
            MaterializedDetectionStore(tmp_path)

    def test_each_session_gets_its_own_segment(self, tmp_path):
        with MaterializedDetectionStore(tmp_path) as store:
            store.store("true_ap", ("v#0", ("a",), "t"), 0.5)
        with MaterializedDetectionStore(tmp_path) as store:
            store.store("true_ap", ("v#1", ("a",), "t"), 0.6)
        assert len(sorted(tmp_path.glob("segment-*.jsonl"))) == 2
        reopened = MaterializedDetectionStore(tmp_path)
        assert len(reopened) == 2

    def test_read_only_session_creates_no_segment(self, tmp_path):
        with MaterializedDetectionStore(tmp_path) as store:
            store.load("true_ap", ("absent",))
        assert not list(tmp_path.glob("segment-*.jsonl"))


class TestStats:
    def test_hit_miss_counters(self, tmp_path):
        store = MaterializedDetectionStore(tmp_path)
        store.store("true_ap", ("v#0", ("a",), "t"), 0.5)
        assert store.load("true_ap", ("v#0", ("a",), "t")) == 0.5
        assert store.load("true_ap", ("absent",)) is None
        stats = store.stats()
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.stores == 1
        assert stats.hit_rate == pytest.approx(0.5)
        assert json.loads(json.dumps(stats.as_dict()))["records"] == 1
