"""Unit tests for MES (Algorithm 1)."""

import pytest

from repro.core.environment import DetectionEnvironment
from repro.core.mes import MES
from repro.core.scoring import WeightedLogScore


@pytest.fixture
def frames(small_video):
    return small_video.frames


class TestMES:
    def test_processes_every_frame(self, environment, frames):
        result = MES(gamma=3).run(environment, frames)
        assert result.frames_processed == len(frames)
        assert [r.frame_index for r in result.records] == list(range(len(frames)))

    def test_initialization_selects_full_ensemble(self, environment, frames):
        result = MES(gamma=4).run(environment, frames)
        for record in result.records[:4]:
            assert record.selected == environment.full_ensemble

    def test_initialization_observes_all_ensembles(self, environment, frames):
        algo = MES(gamma=3)
        algo.run(environment, frames[:3])
        for key in environment.all_ensembles:
            assert algo.statistics.count(key) == 3

    def test_subset_observations_accumulate(self, environment, frames):
        algo = MES(gamma=2)
        algo.run(environment, frames)
        # Every single-model arm is a subset of any selection, so its count
        # equals the number of iterations in which a superset was chosen.
        for name in environment.model_names:
            single_count = algo.statistics.count((name,))
            assert single_count >= 2  # at least the initialization

    def test_selection_is_ucb_argmax(self, environment, frames):
        """After initialization, the chosen arm maximizes mu + bonus."""
        algo = MES(gamma=3)
        result = algo.run(environment, frames[:10])
        # Replaying: run again on same env data and check one decision.
        # (Statistics at the end reflect all updates; we simply check that
        # every post-init selection was one of the lattice keys.)
        for record in result.records[3:]:
            assert record.selected in environment.all_ensembles

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            MES(gamma=0)

    def test_deterministic_given_environment(self, detector_pool, lidar, frames):
        def run():
            env = DetectionEnvironment(
                detector_pool, lidar, scoring=WeightedLogScore(0.5)
            )
            return MES(gamma=3).run(env, frames)

        a, b = run(), run()
        assert [r.selected for r in a.records] == [r.selected for r in b.records]
        assert a.s_sum == pytest.approx(b.s_sum)

    def test_records_carry_both_score_views(self, environment, frames):
        result = MES(gamma=2).run(environment, frames[:6])
        for record in result.records:
            assert 0.0 <= record.est_score <= 1.0
            assert 0.0 <= record.true_score <= 1.0
            assert record.charged_ms > 0.0

    def test_budget_guard_stops_early(self, environment, frames):
        # A budget roughly covering the initialization only.
        result = MES(gamma=2).run(environment, frames, budget_ms=100.0)
        assert result.frames_processed < len(frames)
        assert result.budget_ms == 100.0

    def test_state_reset_between_runs(self, detector_pool, lidar, frames):
        algo = MES(gamma=2)
        env1 = DetectionEnvironment(detector_pool, lidar)
        algo.run(env1, frames[:5])
        env2 = DetectionEnvironment(detector_pool, lidar)
        algo.run(env2, frames[:5])
        # Statistics reflect only the second run (5 iterations).
        assert algo.statistics.count(env2.full_ensemble) <= 5

    def test_charged_less_than_naive_sum(self, environment, frames):
        """Subset reuse: iteration charge is far below per-ensemble cost."""
        result = MES(gamma=2).run(environment, frames[:3])
        init_record = result.records[0]
        # Charging all 7 ensembles independently would cost the sum of each
        # ensemble's own cost; with reuse we pay ~ the 3 single models.
        naive = 0.0
        batch = environment.evaluate(frames[0], environment.all_ensembles, charge=False)
        naive = sum(ev.cost_ms for ev in batch.evaluations.values())
        assert init_record.charged_ms < naive / 2
