"""Tests for logical plans, rewrite rules and EXPLAIN rendering."""

import pytest

from repro.query.ast import Comparison, FieldRef, LogicalExpr
from repro.query.executor import QueryEngine
from repro.query.logical import (
    format_expr,
    frame_prefix_bound,
)
from repro.query.parser import parse_query
from repro.query.planner import PlanError


@pytest.fixture
def engine(detector_pool, lidar, small_video):
    engine = QueryEngine()
    engine.register_video("inputVideo", small_video)
    for det in detector_pool:
        engine.register_detector(det)
    engine.register_reference(lidar)
    return engine


MODELS = "yolov7-tiny-clear, yolov7-tiny-night, yolov7-tiny-rainy"


def _where(text: str):
    query = parse_query(
        f"SELECT frameID FROM (PROCESS v PRODUCE frameID USING BF(m)) "
        f"WHERE {text}"
    )
    return query.where


class TestFramePrefixBound:
    def test_strict_upper_bound(self):
        assert frame_prefix_bound(_where("frameID < 10")) == 10

    def test_inclusive_upper_bound(self):
        assert frame_prefix_bound(_where("frameID <= 10")) == 11

    def test_fractional_bounds(self):
        assert frame_prefix_bound(_where("frameID < 10.5")) == 11
        assert frame_prefix_bound(_where("frameID <= 10.5")) == 11

    def test_tightest_conjunct_wins(self):
        bound = frame_prefix_bound(
            _where("frameID < 20 AND COUNT('car') > 1 AND frameID <= 4")
        )
        assert bound == 5

    def test_negative_bound_clamps_to_zero(self):
        # The grammar has no negative literals; build the node directly.
        expr = Comparison(FieldRef("frameID"), "<", -3.0)
        assert frame_prefix_bound(expr) == 0

    def test_lower_bounds_not_pushed(self):
        assert frame_prefix_bound(_where("frameID > 5")) is None
        assert frame_prefix_bound(_where("frameID >= 5")) is None

    def test_disjunction_not_pushed(self):
        assert frame_prefix_bound(_where("frameID < 5 OR frameID < 9")) is None

    def test_negation_not_pushed(self):
        assert frame_prefix_bound(_where("NOT frameID < 5")) is None

    def test_other_fields_ignored(self):
        assert frame_prefix_bound(_where("score < 0.5")) is None


class TestFormatExpr:
    def test_roundtrip_of_composed_expression(self):
        expr = _where("COUNT('car') > 1 AND (EXISTS('bus') OR NOT frameID < 5)")
        assert format_expr(expr) == (
            "(COUNT('car') > 1 AND (EXISTS('bus') OR NOT frameID < 5))"
        )

    def test_count_star_and_confidence_floor(self):
        assert format_expr(_where("COUNT(*) > 0")) == "COUNT(*) > 0"
        assert (
            format_expr(_where("COUNT('car', conf > 0.5) >= 2"))
            == "COUNT('car', 0.5) >= 2"
        )


class TestRewrites:
    def test_pushdown_limits_scan(self, engine):
        logical = engine.logical_plan(
            f"SELECT frameID FROM (PROCESS inputVideo PRODUCE frameID, "
            f"Detections USING MES({MODELS}; lidar-ref) WITH gamma=2) "
            f"WHERE frameID < 5"
        )
        assert logical.scan.limit == 5
        assert any("predicate pushdown" in r for r in logical.rewrites)

    def test_pushdown_skipped_for_prescan_algorithm(self, engine):
        # SGL calibrates on the whole video (supports_streaming=False);
        # truncating its input would change which detector it commits to.
        logical = engine.logical_plan(
            f"SELECT frameID FROM (PROCESS inputVideo PRODUCE frameID, "
            f"Detections USING SGL({MODELS})) WHERE frameID < 5"
        )
        assert logical.scan.limit is None
        assert not any("pushdown" in r for r in logical.rewrites)

    def test_vacuous_bound_not_recorded(self, engine, small_video):
        logical = engine.logical_plan(
            f"SELECT frameID FROM (PROCESS inputVideo PRODUCE frameID, "
            f"Detections USING BF({MODELS})) "
            f"WHERE frameID < {len(small_video) + 100}"
        )
        assert logical.scan.limit is None
        assert not any("pushdown" in r for r in logical.rewrites)

    def test_projection_pruning_elides_score(self, engine):
        logical = engine.logical_plan(
            f"SELECT frameID FROM (PROCESS inputVideo PRODUCE frameID, "
            f"Detections USING BF({MODELS}))"
        )
        assert logical.score.enabled is False
        assert logical.score.reference is None
        assert any("projection pruning" in r for r in logical.rewrites)

    def test_pruning_blocked_when_score_produced(self, engine):
        logical = engine.logical_plan(
            f"SELECT score FROM (PROCESS inputVideo PRODUCE frameID, score "
            f"USING BF({MODELS}))"
        )
        assert logical.score.enabled is True
        assert logical.score.reference == "lidar-ref"

    def test_pruning_blocked_when_predicate_reads_score(self, engine):
        logical = engine.logical_plan(
            f"SELECT frameID FROM (PROCESS inputVideo PRODUCE frameID "
            f"USING BF({MODELS})) WHERE score > 0.1"
        )
        assert logical.score.enabled is True

    def test_pruning_blocked_for_estimate_consuming_algorithm(self, engine):
        logical = engine.logical_plan(
            f"SELECT frameID FROM (PROCESS inputVideo PRODUCE frameID "
            f"USING MES({MODELS}) WITH gamma=2)"
        )
        assert logical.score.enabled is True

    def test_explicit_reference_blocks_pruning(self, engine):
        logical = engine.logical_plan(
            f"SELECT frameID FROM (PROCESS inputVideo PRODUCE frameID "
            f"USING BF({MODELS}; lidar-ref))"
        )
        assert logical.score.enabled is True
        assert logical.score.reference == "lidar-ref"

    def test_pruned_query_runs_without_any_registered_reference(
        self, detector_pool, small_video
    ):
        engine = QueryEngine()
        engine.register_video("inputVideo", small_video)
        for det in detector_pool:
            engine.register_detector(det)
        result = engine.execute(
            f"SELECT frameID FROM (PROCESS inputVideo PRODUCE frameID, "
            f"Detections USING BF({MODELS})) WHERE frameID < 4"
        )
        assert result.frame_ids() == [0, 1, 2, 3]

    def test_unpruned_query_without_reference_fails(
        self, detector_pool, small_video
    ):
        engine = QueryEngine()
        engine.register_video("inputVideo", small_video)
        for det in detector_pool:
            engine.register_detector(det)
        with pytest.raises(PlanError, match="no reference model"):
            engine.execute(
                f"SELECT frameID FROM (PROCESS inputVideo PRODUCE frameID "
                f"USING MES({MODELS}) WITH gamma=2)"
            )


class TestExplain:
    def test_golden_explain_with_both_rewrites(self, engine):
        rendered = engine.explain(
            "EXPLAIN SELECT frameID FROM (PROCESS inputVideo PRODUCE "
            "frameID, Detections USING BF(yolov7-tiny-clear)) "
            "WHERE frameID < 10"
        )
        assert rendered == (
            "logical plan:\n"
            "  Scan(video='inputVideo', first 10 of 30 frames)\n"
            "  Detect(algorithm=BF, models=[yolov7-tiny-clear], budget=none)\n"
            "  Fuse(method=wbf)\n"
            "  Score(skipped: projection pruning)\n"
            "  Filter(predicate=frameID < 10, min_duration=1)\n"
            "  Project(columns=[frameID])\n"
            "rewrites:\n"
            "  - predicate pushdown: frameID bound limits the scan to the "
            "first 10 of 30 frames\n"
            "  - projection pruning: no column or predicate reads score and "
            "BF ignores estimates; reference scoring elided\n"
            "physical plan:\n"
            "  FrameScanExec(video='inputVideo', frames=10 of 30)\n"
            "  DetectExec(algorithm=BF, backend=SerialBackend, "
            "scoring=true-only)\n"
            "  FilterExec(predicate=frameID < 10)\n"
            "  TemporalFilterExec(min_duration=1)\n"
            "  ProjectExec(columns=[frameID])"
        )

    def test_golden_explain_without_rewrites(self, engine):
        rendered = engine.explain(
            "SELECT frameID FROM (PROCESS inputVideo PRODUCE frameID, "
            "Detections, score USING MES(yolov7-tiny-clear, "
            "yolov7-tiny-night; lidar-ref) WITH gamma=2, budget=500)"
        )
        assert rendered == (
            "logical plan:\n"
            "  Scan(video='inputVideo', all 30 frames)\n"
            "  Detect(algorithm=MES, models=[yolov7-tiny-clear, "
            "yolov7-tiny-night], budget=500ms)\n"
            "  Fuse(method=wbf)\n"
            "  Score(reference=lidar-ref)\n"
            "  Filter(predicate=true, min_duration=1)\n"
            "  Project(columns=[frameID])\n"
            "rewrites:\n"
            "  (none)\n"
            "physical plan:\n"
            "  FrameScanExec(video='inputVideo', frames=30 of 30)\n"
            "  DetectExec(algorithm=MES, backend=SerialBackend, "
            "scoring=estimated+true)\n"
            "  FilterExec(predicate=true)\n"
            "  TemporalFilterExec(min_duration=1)\n"
            "  ProjectExec(columns=[frameID])"
        )

    def test_execute_refuses_explain_queries(self, engine):
        with pytest.raises(PlanError, match="EXPLAIN"):
            engine.execute(
                f"EXPLAIN SELECT frameID FROM (PROCESS inputVideo PRODUCE "
                f"frameID USING BF({MODELS}))"
            )

    def test_explain_does_not_run_inference(self, engine):
        engine.explain(
            f"SELECT frameID FROM (PROCESS inputVideo PRODUCE frameID, "
            f"Detections USING MES({MODELS}; lidar-ref) WITH gamma=2)"
        )
        assert engine.store.stats().lookups == 0
