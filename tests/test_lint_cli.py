"""End-to-end tests for the ``repro lint`` CLI subcommand.

Covers the exit-code contract (0 clean / 1 violations / 2 usage error),
both output formats, rule listing and selection, and — the acceptance
gate — that the shipped tree itself lints clean.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.lint.cli import main as lint_main

REPO_ROOT = Path(__file__).resolve().parent.parent


def write_offender(tmp_path: Path) -> Path:
    # Path fragments opt the file into the path-scoped rules.
    target = tmp_path / "src" / "repro" / "core" / "offender.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        textwrap.dedent(
            """
            import numpy as np

            _CACHE = {}

            def draw(key):
                _CACHE[key] = np.random.rand(3)
            """
        ),
        encoding="utf-8",
    )
    return target


def test_shipped_tree_is_clean(capsys):
    exit_code = repro_main(["lint", str(REPO_ROOT / "src")])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "no violations" in captured.out


def test_seeded_violations_exit_nonzero(tmp_path, capsys):
    target = write_offender(tmp_path)
    exit_code = repro_main(["lint", str(tmp_path)])
    captured = capsys.readouterr()
    assert exit_code == 1
    assert "RPR001" in captured.out
    assert "RPR003" in captured.out
    # Findings are reported as path:line:col.
    assert f"{target}:7" in captured.out


def test_json_format(tmp_path, capsys):
    write_offender(tmp_path)
    exit_code = repro_main(["lint", "--format", "json", str(tmp_path)])
    captured = capsys.readouterr()
    assert exit_code == 1
    payload = json.loads(captured.out)
    assert payload["ok"] is False
    assert payload["files_checked"] == 1
    assert payload["counts_by_rule"]["RPR001"] == 1
    rule_ids = {v["rule"] for v in payload["violations"]}
    assert rule_ids == {"RPR001", "RPR003"}
    assert all({"path", "line", "col", "message"} <= v.keys() for v in payload["violations"])


def test_select_limits_rules(tmp_path, capsys):
    write_offender(tmp_path)
    exit_code = repro_main(["lint", "--select", "RPR001", str(tmp_path)])
    captured = capsys.readouterr()
    assert exit_code == 1
    assert "RPR001" in captured.out
    assert "RPR003" not in captured.out


def test_unknown_select_is_usage_error(tmp_path, capsys):
    exit_code = repro_main(["lint", "--select", "RPR999", str(tmp_path)])
    captured = capsys.readouterr()
    assert exit_code == 2
    assert "RPR999" in captured.err


def test_missing_path_is_usage_error(tmp_path, capsys):
    exit_code = repro_main(["lint", str(tmp_path / "nope")])
    captured = capsys.readouterr()
    assert exit_code == 2
    assert "nope" in captured.err


def test_list_rules(capsys):
    exit_code = repro_main(["lint", "--list-rules"])
    captured = capsys.readouterr()
    assert exit_code == 0
    for index in range(1, 16):
        assert f"RPR{index:03d}" in captured.out


def test_explain_prints_guide(capsys):
    exit_code = repro_main(["lint", "--explain", "RPR015"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert captured.out.startswith("RPR015")
    assert "Fires (true positive):" in captured.out
    assert "Does not fire" in captured.out
    assert "Sanctioned escapes:" in captured.out


def test_explain_is_case_insensitive(capsys):
    exit_code = repro_main(["lint", "--explain", "rpr006"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert captured.out.startswith("RPR006")


def test_explain_unknown_rule_is_usage_error(capsys):
    exit_code = repro_main(["lint", "--explain", "RPR999"])
    captured = capsys.readouterr()
    assert exit_code == 2
    assert "RPR999" in captured.err


def test_every_shipped_rule_has_a_guide():
    from repro.lint.explain import RULE_GUIDES
    from repro.lint.project_rules import ALL_PROJECT_RULES
    from repro.lint.rules import ALL_RULES

    shipped = {rule.rule_id for rule in (*ALL_RULES, *ALL_PROJECT_RULES)}
    assert shipped <= set(RULE_GUIDES), "every rule needs an --explain guide"


def test_sarif_full_description_matches_explain_guide(tmp_path, capsys):
    # Single source of truth: the SARIF fullDescription is the guide
    # description, so --explain and code scanning cannot drift.
    from repro.lint.explain import RULE_GUIDES

    (tmp_path / "clean.py").write_text("x = 1\n", encoding="utf-8")
    repro_main(["lint", "--format", "sarif", str(tmp_path)])
    sarif = json.loads(capsys.readouterr().out)
    by_id = {
        rule["id"]: rule for rule in sarif["runs"][0]["tool"]["driver"]["rules"]
    }
    for rule_id, guide in RULE_GUIDES.items():
        assert by_id[rule_id]["fullDescription"]["text"] == guide.description


def test_unknown_config_key_warns_on_stderr(tmp_path, capsys):
    (tmp_path / "pyproject.toml").write_text(
        '[tool.repro-lint]\npersistance = ["store"]\n', encoding="utf-8"
    )
    (tmp_path / "clean.py").write_text("x = 1\n", encoding="utf-8")
    exit_code = repro_main(["lint", str(tmp_path)])
    captured = capsys.readouterr()
    # Exit-code-neutral: the typo warns but never fails the run.
    assert exit_code == 0
    assert "unknown [tool.repro-lint] key(s) 'persistance'" in captured.err
    assert "no violations" in captured.out


def test_known_config_keys_do_not_warn(tmp_path, capsys):
    (tmp_path / "pyproject.toml").write_text(
        '[tool.repro-lint]\npersistence = ["store"]\n'
        'sanctioned-seams = ["pkg.clock.now"]\n',
        encoding="utf-8",
    )
    (tmp_path / "clean.py").write_text("x = 1\n", encoding="utf-8")
    exit_code = repro_main(["lint", str(tmp_path)])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "unknown" not in captured.err


def test_standalone_module_entrypoint(tmp_path, capsys):
    # ``python -m repro.lint`` shares the implementation with the
    # subcommand; exercise its main() directly.
    write_offender(tmp_path)
    assert lint_main([str(tmp_path)]) == 1
    assert "RPR001" in capsys.readouterr().out


def test_suppressed_file_is_clean(tmp_path, capsys):
    target = tmp_path / "src" / "repro" / "core" / "justified.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        "_REGISTRY = {}\n"
        "\n"
        "def register(name, factory):\n"
        "    # repro-lint: disable=RPR003 -- bounded: setup-time registration only\n"
        "    _REGISTRY[name] = factory\n",
        encoding="utf-8",
    )
    assert repro_main(["lint", str(tmp_path)]) == 0
    assert "no violations" in capsys.readouterr().out


@pytest.mark.parametrize("fmt", ["text", "json"])
def test_clean_dir_both_formats(tmp_path, capsys, fmt):
    (tmp_path / "clean.py").write_text("VALUE = 3\n", encoding="utf-8")
    assert repro_main(["lint", "--format", fmt, str(tmp_path)]) == 0
    out = capsys.readouterr().out
    if fmt == "json":
        assert json.loads(out)["ok"] is True


# ---------------------------------------------------------------------------
# --jobs


def test_jobs_output_identical_to_serial(tmp_path, capsys):
    write_offender(tmp_path)
    for index in range(4):
        (tmp_path / f"clean_{index}.py").write_text(
            f"VALUE_{index} = {index}\n", encoding="utf-8"
        )
    assert repro_main(["lint", "--format", "json", str(tmp_path)]) == 1
    serial = capsys.readouterr().out
    exit_code = repro_main(
        ["lint", "--format", "json", "--jobs", "4", str(tmp_path)]
    )
    parallel = capsys.readouterr().out
    assert exit_code == 1
    # Byte-identical output, not merely equivalent findings.
    assert parallel == serial


def test_jobs_negative_is_usage_error(tmp_path, capsys):
    (tmp_path / "clean.py").write_text("VALUE = 3\n", encoding="utf-8")
    assert repro_main(["lint", "--jobs", "-2", str(tmp_path)]) == 2
    assert "--jobs" in capsys.readouterr().err


def test_jobs_zero_means_cpu_count(tmp_path, capsys):
    (tmp_path / "clean.py").write_text("VALUE = 3\n", encoding="utf-8")
    assert repro_main(["lint", "--jobs", "0", str(tmp_path)]) == 0
    assert "no violations" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# --format sarif


def test_sarif_format_shape(tmp_path, capsys):
    target = write_offender(tmp_path)
    exit_code = repro_main(["lint", "--format", "sarif", str(tmp_path)])
    captured = capsys.readouterr()
    assert exit_code == 1
    sarif = json.loads(captured.out)
    assert sarif["version"] == "2.1.0"
    assert "sarif-2.1.0" in sarif["$schema"]
    run = sarif["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    declared = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert {"RPR000", "RPR001", "RPR006", "RPR009"} <= declared
    results = run["results"]
    assert {r["ruleId"] for r in results} == {"RPR001", "RPR003"}
    for result in results:
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == str(target)
        region = location["region"]
        # SARIF is 1-based in both dimensions.
        assert region["startLine"] >= 1
        assert region["startColumn"] >= 1
        index = result["ruleIndex"]
        assert run["tool"]["driver"]["rules"][index]["id"] == result["ruleId"]


def test_sarif_clean_run_has_empty_results(tmp_path, capsys):
    (tmp_path / "clean.py").write_text("VALUE = 3\n", encoding="utf-8")
    assert repro_main(["lint", "--format", "sarif", str(tmp_path)]) == 0
    sarif = json.loads(capsys.readouterr().out)
    assert sarif["runs"][0]["results"] == []


def test_output_flag_writes_report_file(tmp_path, capsys):
    write_offender(tmp_path)
    report_path = tmp_path / "lint.sarif"
    exit_code = repro_main(
        [
            "lint",
            "--format",
            "sarif",
            "--output",
            str(report_path),
            str(tmp_path),
        ]
    )
    captured = capsys.readouterr()
    assert exit_code == 1
    sarif = json.loads(report_path.read_text(encoding="utf-8"))
    assert sarif["version"] == "2.1.0"
    # stdout carries the summary, not the report.
    assert "violation" in captured.out
    assert str(report_path) in captured.out


# ---------------------------------------------------------------------------
# --baseline / --write-baseline


def test_baseline_roundtrip_suppresses_known_findings(tmp_path, capsys):
    write_offender(tmp_path)
    baseline = tmp_path / "baseline.json"
    exit_code = repro_main(
        ["lint", "--write-baseline", str(baseline), str(tmp_path)]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "2 findings recorded" in captured.out
    payload = json.loads(baseline.read_text(encoding="utf-8"))
    assert payload["version"] == 1
    assert len(payload["fingerprints"]) == 2

    # Same tree + baseline: clean.
    exit_code = repro_main(
        ["lint", "--baseline", str(baseline), str(tmp_path)]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "no violations" in captured.out
    assert "2 known findings suppressed" in captured.out


def test_baseline_new_finding_still_fails(tmp_path, capsys):
    write_offender(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert (
        repro_main(["lint", "--write-baseline", str(baseline), str(tmp_path)])
        == 0
    )
    capsys.readouterr()
    fresh = tmp_path / "src" / "repro" / "core" / "fresh.py"
    fresh.write_text(
        "import numpy as np\n\n\ndef draw():\n    return np.random.rand(3)\n",
        encoding="utf-8",
    )
    exit_code = repro_main(
        ["lint", "--baseline", str(baseline), str(tmp_path)]
    )
    captured = capsys.readouterr()
    assert exit_code == 1
    assert "fresh.py" in captured.out
    # The baselined offender stays suppressed; only the new file reports.
    assert "offender.py" not in captured.out


def test_missing_baseline_is_usage_error(tmp_path, capsys):
    (tmp_path / "clean.py").write_text("VALUE = 3\n", encoding="utf-8")
    exit_code = repro_main(
        ["lint", "--baseline", str(tmp_path / "nope.json"), str(tmp_path)]
    )
    assert exit_code == 2
    assert "nope.json" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# whole-program rules through the CLI


def test_project_rule_finding_reported_by_cli(tmp_path, capsys):
    package = tmp_path / "src" / "repro"
    (package / "engine").mkdir(parents=True)
    (package / "core").mkdir(parents=True)
    (package / "engine" / "pipe.py").write_text(
        "from repro.core.mes import choose\n", encoding="utf-8"
    )
    (package / "core" / "mes.py").write_text(
        "def choose():\n    return 1\n", encoding="utf-8"
    )
    exit_code = repro_main(["lint", "--select", "RPR009", str(tmp_path)])
    captured = capsys.readouterr()
    assert exit_code == 1
    assert "RPR009" in captured.out
    assert "must not import" in captured.out
