"""End-to-end tests for the ``repro lint`` CLI subcommand.

Covers the exit-code contract (0 clean / 1 violations / 2 usage error),
both output formats, rule listing and selection, and — the acceptance
gate — that the shipped tree itself lints clean.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.lint.cli import main as lint_main

REPO_ROOT = Path(__file__).resolve().parent.parent


def write_offender(tmp_path: Path) -> Path:
    # Path fragments opt the file into the path-scoped rules.
    target = tmp_path / "src" / "repro" / "core" / "offender.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        textwrap.dedent(
            """
            import numpy as np

            _CACHE = {}

            def draw(key):
                _CACHE[key] = np.random.rand(3)
            """
        ),
        encoding="utf-8",
    )
    return target


def test_shipped_tree_is_clean(capsys):
    exit_code = repro_main(["lint", str(REPO_ROOT / "src")])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "no violations" in captured.out


def test_seeded_violations_exit_nonzero(tmp_path, capsys):
    target = write_offender(tmp_path)
    exit_code = repro_main(["lint", str(tmp_path)])
    captured = capsys.readouterr()
    assert exit_code == 1
    assert "RPR001" in captured.out
    assert "RPR003" in captured.out
    # Findings are reported as path:line:col.
    assert f"{target}:7" in captured.out


def test_json_format(tmp_path, capsys):
    write_offender(tmp_path)
    exit_code = repro_main(["lint", "--format", "json", str(tmp_path)])
    captured = capsys.readouterr()
    assert exit_code == 1
    payload = json.loads(captured.out)
    assert payload["ok"] is False
    assert payload["files_checked"] == 1
    assert payload["counts_by_rule"]["RPR001"] == 1
    rule_ids = {v["rule"] for v in payload["violations"]}
    assert rule_ids == {"RPR001", "RPR003"}
    assert all({"path", "line", "col", "message"} <= v.keys() for v in payload["violations"])


def test_select_limits_rules(tmp_path, capsys):
    write_offender(tmp_path)
    exit_code = repro_main(["lint", "--select", "RPR001", str(tmp_path)])
    captured = capsys.readouterr()
    assert exit_code == 1
    assert "RPR001" in captured.out
    assert "RPR003" not in captured.out


def test_unknown_select_is_usage_error(tmp_path, capsys):
    exit_code = repro_main(["lint", "--select", "RPR999", str(tmp_path)])
    captured = capsys.readouterr()
    assert exit_code == 2
    assert "RPR999" in captured.err


def test_missing_path_is_usage_error(tmp_path, capsys):
    exit_code = repro_main(["lint", str(tmp_path / "nope")])
    captured = capsys.readouterr()
    assert exit_code == 2
    assert "nope" in captured.err


def test_list_rules(capsys):
    exit_code = repro_main(["lint", "--list-rules"])
    captured = capsys.readouterr()
    assert exit_code == 0
    for rule_id in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005"):
        assert rule_id in captured.out


def test_standalone_module_entrypoint(tmp_path, capsys):
    # ``python -m repro.lint`` shares the implementation with the
    # subcommand; exercise its main() directly.
    write_offender(tmp_path)
    assert lint_main([str(tmp_path)]) == 1
    assert "RPR001" in capsys.readouterr().out


def test_suppressed_file_is_clean(tmp_path, capsys):
    target = tmp_path / "src" / "repro" / "core" / "justified.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        "_REGISTRY = {}\n"
        "\n"
        "def register(name, factory):\n"
        "    # repro-lint: disable=RPR003 -- bounded: setup-time registration only\n"
        "    _REGISTRY[name] = factory\n",
        encoding="utf-8",
    )
    assert repro_main(["lint", str(tmp_path)]) == 0
    assert "no violations" in capsys.readouterr().out


@pytest.mark.parametrize("fmt", ["text", "json"])
def test_clean_dir_both_formats(tmp_path, capsys, fmt):
    (tmp_path / "clean.py").write_text("VALUE = 3\n", encoding="utf-8")
    assert repro_main(["lint", "--format", fmt, str(tmp_path)]) == 0
    out = capsys.readouterr().out
    if fmt == "json":
        assert json.loads(out)["ok"] is True
