"""Unit tests for the temporal query qualifier (FOR AT LEAST n FRAMES)."""

import pytest

from repro.detection.types import FrameDetections
from repro.query.executor import Row, _apply_min_duration
from repro.query.parser import ParseError, parse_query


def row(frame_id):
    return Row(
        frame_id=frame_id,
        detections=FrameDetections(frame_id),
        score=0.5,
        ensemble=("m1",),
    )


class TestParsing:
    def test_for_at_least_clause(self):
        query = parse_query(
            "SELECT frameID FROM (PROCESS v PRODUCE frameID USING BF(m1)) "
            "WHERE COUNT('car') >= 1 FOR AT LEAST 5 FRAMES"
        )
        assert query.min_duration == 5

    def test_default_duration_is_one(self):
        query = parse_query(
            "SELECT frameID FROM (PROCESS v PRODUCE frameID USING BF(m1)) "
            "WHERE COUNT('car') >= 1"
        )
        assert query.min_duration == 1

    def test_incomplete_clause_rejected(self):
        with pytest.raises(ParseError):
            parse_query(
                "SELECT frameID FROM (PROCESS v PRODUCE frameID USING BF(m1)) "
                "WHERE COUNT('car') >= 1 FOR AT LEAST 5"
            )

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            parse_query(
                "SELECT frameID FROM (PROCESS v PRODUCE frameID USING BF(m1)) "
                "WHERE COUNT('car') >= 1 FOR AT LEAST 0 FRAMES"
            )


class TestApplyMinDuration:
    def test_short_runs_filtered(self):
        rows = [row(i) for i in (1, 2, 5, 6, 7, 10)]
        kept = _apply_min_duration(rows, 3)
        assert [r.frame_id for r in kept] == [5, 6, 7]

    def test_exact_length_run_kept(self):
        rows = [row(i) for i in (1, 2, 3)]
        assert len(_apply_min_duration(rows, 3)) == 3

    def test_trailing_run_kept(self):
        rows = [row(i) for i in (0, 5, 6, 7, 8)]
        kept = _apply_min_duration(rows, 2)
        assert [r.frame_id for r in kept] == [5, 6, 7, 8]

    def test_empty_rows(self):
        assert _apply_min_duration([], 3) == []

    def test_duration_one_keeps_everything(self):
        rows = [row(i) for i in (1, 5, 9)]
        assert _apply_min_duration(rows, 1) == rows


class TestEndToEnd:
    def test_temporal_query(self, detector_pool, lidar, small_video):
        from repro.query.executor import QueryEngine

        engine = QueryEngine()
        engine.register_video("v", small_video)
        for det in detector_pool:
            engine.register_detector(det)
        engine.register_reference(lidar)

        plain = engine.execute(
            "SELECT frameID FROM (PROCESS v PRODUCE frameID, Detections "
            "USING BF(yolov7-tiny-clear, yolov7-tiny-night)) "
            "WHERE COUNT(*) >= 2"
        )
        sustained = engine.execute(
            "SELECT frameID FROM (PROCESS v PRODUCE frameID, Detections "
            "USING BF(yolov7-tiny-clear, yolov7-tiny-night)) "
            "WHERE COUNT(*) >= 2 FOR AT LEAST 3 FRAMES"
        )
        assert len(sustained) <= len(plain)
        # Every surviving frame sits in a >= 3-frame consecutive run.
        ids = sustained.frame_ids()
        for fid in ids:
            run = {fid}
            lo, hi = fid - 1, fid + 1
            while lo in ids:
                run.add(lo)
                lo -= 1
            while hi in ids:
                run.add(hi)
                hi += 1
            assert len(run) >= 3
