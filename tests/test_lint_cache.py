"""Incremental cache behaviour: hits, invalidation, byte-identity.

The contract under test (see ``src/repro/lint/cache.py``): findings are
byte-identical with or without the cache and for any ``--jobs`` value;
cache keys fold in file content, the config fingerprint, the analyzer
version and the active rule/select sets, so every invalidation is
constructive (a changed ingredient simply produces a fresh key); and a
corrupt entry degrades to a miss, never to wrong findings.
"""

from __future__ import annotations

from pathlib import Path
from textwrap import dedent

from repro.lint.baseline import violation_fingerprint, write_baseline
from repro.lint.cache import LintCache
from repro.lint.engine import LintResult, lint_paths
from repro.lint.project import LintConfig
from repro.lint.report import render_json, render_sarif, render_text

CONFIG = LintConfig()


def write_tree(root: Path) -> list[Path]:
    """A small mixed tree: clean files plus one RPR001 offender."""
    package = root / "src" / "repro" / "core"
    package.mkdir(parents=True)
    files: list[Path] = []
    for index in range(4):
        clean = package / f"clean_{index}.py"
        clean.write_text(
            f"def helper_{index}(x):\n    return x + {index}\n",
            encoding="utf-8",
        )
        files.append(clean)
    offender = package / "offender.py"
    offender.write_text(
        dedent(
            """
            import random

            def draw(key):
                return random.random()
            """
        ).lstrip(),
        encoding="utf-8",
    )
    files.append(offender)
    return files


def run(
    root: Path,
    cache: LintCache | None = None,
    jobs: int = 1,
    select: set[str] | None = None,
) -> LintResult:
    return lint_paths([root], select=select, jobs=jobs, config=CONFIG, cache=cache)


def test_cold_then_warm_hits_everything(tmp_path: Path) -> None:
    files = write_tree(tmp_path)
    cache = LintCache(tmp_path / "cache")

    cold = run(tmp_path, cache)
    assert cache.file_hits == 0
    assert cache.file_misses == len(files)
    assert cache.project_hits == 0
    assert cache.project_misses == 1

    warm_cache = LintCache(tmp_path / "cache")
    warm = run(tmp_path, warm_cache)
    assert warm_cache.file_hits == len(files)
    assert warm_cache.file_misses == 0
    assert warm_cache.project_hits == 1
    assert warm_cache.project_misses == 0
    assert warm == cold


def test_cold_and_warm_reports_are_byte_identical(tmp_path: Path) -> None:
    write_tree(tmp_path)
    cold = run(tmp_path, LintCache(tmp_path / "cache"))
    warm = run(tmp_path, LintCache(tmp_path / "cache"))
    uncached = run(tmp_path)
    for render in (render_text, render_json, render_sarif):
        assert render(cold) == render(warm) == render(uncached)


def test_file_edit_invalidates_only_that_file_and_the_project(
    tmp_path: Path,
) -> None:
    files = write_tree(tmp_path)
    run(tmp_path, LintCache(tmp_path / "cache"))

    edited = files[0]
    edited.write_text(
        "def helper_0(x):\n    return x - 1\n", encoding="utf-8"
    )
    cache = LintCache(tmp_path / "cache")
    result = run(tmp_path, cache)
    # Only the edited file recomputes; the project phase always keys over
    # every file's digest, so one edit anywhere invalidates it too.
    assert cache.file_misses == 1
    assert cache.file_hits == len(files) - 1
    assert cache.project_misses == 1
    assert result == run(tmp_path)


def test_config_change_invalidates_everything(tmp_path: Path) -> None:
    files = write_tree(tmp_path)
    run(tmp_path, LintCache(tmp_path / "cache"))

    cache = LintCache(tmp_path / "cache")
    other = LintConfig(persistence=("core",))
    lint_paths([tmp_path], config=other, cache=cache)
    assert cache.file_hits == 0
    assert cache.file_misses == len(files)
    assert cache.project_misses == 1


def test_analyzer_version_bump_invalidates_everything(
    tmp_path: Path, monkeypatch
) -> None:
    files = write_tree(tmp_path)
    run(tmp_path, LintCache(tmp_path / "cache"))

    # jobs=1 keeps everything in-process so the monkeypatch is visible.
    monkeypatch.setattr("repro.lint.cache.ANALYZER_VERSION", "test-bump")
    cache = LintCache(tmp_path / "cache")
    result = run(tmp_path, cache)
    assert cache.file_hits == 0
    assert cache.file_misses == len(files)
    assert cache.project_misses == 1
    assert result == run(tmp_path)


def test_select_sets_use_distinct_keys(tmp_path: Path) -> None:
    files = write_tree(tmp_path)
    narrow = run(tmp_path, LintCache(tmp_path / "cache"), select={"RPR001"})

    # A full run must not be served from the narrow run's entries.
    cache = LintCache(tmp_path / "cache")
    full = run(tmp_path, cache)
    assert cache.file_hits == 0
    assert cache.file_misses == len(files)
    assert full == run(tmp_path)
    assert narrow == run(tmp_path, select={"RPR001"})


def test_corrupt_entries_degrade_to_misses(tmp_path: Path) -> None:
    write_tree(tmp_path)
    cache_dir = tmp_path / "cache"
    expected = run(tmp_path, LintCache(cache_dir))

    for entry in cache_dir.glob("*.json"):
        entry.write_text("{not json", encoding="utf-8")
    cache = LintCache(cache_dir)
    assert run(tmp_path, cache) == expected
    assert cache.file_hits == 0
    # The recompute heals the entries in place.
    healed = LintCache(cache_dir)
    assert run(tmp_path, healed) == expected
    assert healed.file_misses == 0


def test_jobs_and_cache_compose(tmp_path: Path) -> None:
    write_tree(tmp_path)
    serial = run(tmp_path)
    cold_jobs = run(tmp_path, LintCache(tmp_path / "cache"), jobs=4)
    warm_jobs = run(tmp_path, LintCache(tmp_path / "cache"), jobs=4)
    assert serial == cold_jobs == warm_jobs
    for render in (render_text, render_json, render_sarif):
        assert render(serial) == render(cold_jobs) == render(warm_jobs)


def test_missing_cache_dir_parent_degrades_gracefully(tmp_path: Path) -> None:
    write_tree(tmp_path)
    # A cache rooted somewhere creatable-but-absent just gets created;
    # results match the uncached run either way.
    nested = tmp_path / "a" / "b" / "cache"
    assert run(tmp_path, LintCache(nested)) == run(tmp_path)
    assert nested.is_dir()


def test_baseline_fingerprints_stable_across_modes(tmp_path: Path) -> None:
    write_tree(tmp_path)
    runs = [
        run(tmp_path),
        run(tmp_path, LintCache(tmp_path / "cache")),
        run(tmp_path, LintCache(tmp_path / "cache")),
        run(tmp_path, LintCache(tmp_path / "cache"), jobs=4),
        run(tmp_path, jobs=4),
    ]
    fingerprints = [
        [violation_fingerprint(v) for v in result.violations] for result in runs
    ]
    assert all(prints == fingerprints[0] for prints in fingerprints)

    # And the serialized baseline file itself is byte-identical.
    texts = []
    for index, result in enumerate(runs):
        target = tmp_path / f"baseline_{index}.json"
        write_baseline(target, result.violations)
        texts.append(target.read_text(encoding="utf-8"))
    assert all(text == texts[0] for text in texts)


def test_stale_analyzer_version_entries_are_not_served(
    tmp_path: Path, monkeypatch
) -> None:
    """Entries written by the previous analyzer release (version "1",
    before the effect fixpoint existed) must never satisfy a lookup from
    the current release."""
    files = write_tree(tmp_path)
    monkeypatch.setattr("repro.lint.cache.ANALYZER_VERSION", "1")
    run(tmp_path, LintCache(tmp_path / "cache"))
    monkeypatch.undo()

    cache = LintCache(tmp_path / "cache")
    result = run(tmp_path, cache)
    assert cache.file_hits == 0
    assert cache.file_misses == len(files)
    assert cache.project_misses == 1
    assert result == run(tmp_path)


def test_new_rule_ids_invalidate_file_and_project_entries(
    tmp_path: Path,
) -> None:
    """A cache populated without RPR013-015 in the rule set cannot serve
    a run that has them: the environment key folds in every active rule
    ID, so growing the rule set is constructively invalidating."""
    from repro.lint.project_rules import ALL_PROJECT_RULES

    files = write_tree(tmp_path)
    legacy = tuple(
        rule
        for rule in ALL_PROJECT_RULES
        if rule.rule_id not in {"RPR013", "RPR014", "RPR015"}
    )
    legacy_cache = LintCache(tmp_path / "cache")
    lint_paths(
        [tmp_path], config=CONFIG, cache=legacy_cache, project_rules=legacy
    )
    assert legacy_cache.file_misses == len(files)

    cache = LintCache(tmp_path / "cache")
    result = run(tmp_path, cache)
    assert cache.file_hits == 0
    assert cache.file_misses == len(files)
    assert cache.project_misses == 1
    assert result == run(tmp_path)


def test_effect_rule_findings_cache_byte_identically(tmp_path: Path) -> None:
    """RPR015 findings (project-phase, effect-fixpoint-backed) round-trip
    through the cache and --jobs with byte-identical reports."""
    package = tmp_path / "src" / "repro" / "tracking"
    package.mkdir(parents=True)
    (package / "events.py").write_text(
        dedent(
            """
            class EventLog:
                def __init__(self):
                    self._events = []

                def on_batch(self, frames):
                    for frame in frames:
                        self._events.append(frame)
            """
        ).lstrip(),
        encoding="utf-8",
    )
    cold = run(tmp_path, LintCache(tmp_path / "cache"))
    warm = run(tmp_path, LintCache(tmp_path / "cache"))
    warm_jobs = run(tmp_path, LintCache(tmp_path / "cache"), jobs=4)
    uncached = run(tmp_path)
    assert [v.rule_id for v in cold.violations] == ["RPR015"]
    for render in (render_text, render_json, render_sarif):
        assert (
            render(cold)
            == render(warm)
            == render(warm_jobs)
            == render(uncached)
        )
