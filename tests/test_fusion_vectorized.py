"""Scalar vs vectorized fusion kernels: bit-for-bit equivalence.

The vectorized kernels (``repro.ensembling.arrays`` and each method's
``_fuse_class_arrays``) promise *bit-identical* outputs to the scalar
reference path — not merely close ones.  These tests pin that contract:

* a hypothesis property drives every registered method over random pools
  in ``scalar``, ``vectorized`` and ``auto`` modes and requires exact
  ``Detection``-list equality (dataclass ``==`` compares every float);
* the greedy-clustering tie-break — stable ``(-confidence, index)`` visit
  order — is pinned with explicit equal-confidence pools;
* :func:`~repro.ensembling.arrays.weighted_mean_box` is checked against
  :func:`~repro.detection.boxes.average_boxes` on both its small-cluster
  and array branches, including the all-zero-weights error;
* ``fuse_mode`` validation and the ``auto`` dispatch cutoff are covered
  directly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection.boxes import BBox, average_boxes
from repro.detection.types import Detection, FrameDetections
from repro.ensembling import VECTORIZE_MIN_POOL
from repro.ensembling.arrays import (
    ClassPool,
    greedy_iou_clusters,
    partition_by_label,
    stable_confidence_order,
    weighted_mean_box,
)
from repro.ensembling.base import cluster_by_iou
from repro.ensembling.registry import available_methods, create_method


@st.composite
def detections(draw, labels=("car", "bus")):
    x1 = draw(st.floats(min_value=0, max_value=800))
    y1 = draw(st.floats(min_value=0, max_value=400))
    w = draw(st.floats(min_value=5, max_value=300))
    h = draw(st.floats(min_value=5, max_value=200))
    conf = draw(st.floats(min_value=0.01, max_value=1.0))
    source = draw(st.sampled_from(["m1", "m2", "m3", "m4"]))
    return Detection(
        BBox(x1, y1, x1 + w, y1 + h),
        conf,
        draw(st.sampled_from(labels)),
        source=source,
    )


@st.composite
def detector_outputs(draw, max_per_model=12):
    num_models = draw(st.integers(min_value=1, max_value=4))
    frames = []
    for i in range(num_models):
        dets = draw(
            st.lists(detections(), min_size=0, max_size=max_per_model)
        )
        frames.append(FrameDetections(0, tuple(dets), source=f"m{i + 1}"))
    return frames


def _clustered_outputs(seed: int, num_objects: int, num_models: int = 4):
    """Deterministic pools of overlapping re-detections (dense clusters)."""
    rng = np.random.default_rng(seed)
    outputs = []
    centers = rng.uniform(100.0, 900.0, size=(num_objects, 2))
    sizes = rng.uniform(40.0, 180.0, size=(num_objects, 2))
    for m in range(num_models):
        dets = []
        for obj in range(num_objects):
            cx, cy = centers[obj]
            w, h = sizes[obj]
            x1 = float(cx - w / 2.0 + rng.uniform(-9.0, 9.0))
            y1 = float(cy - h / 2.0 + rng.uniform(-9.0, 9.0))
            dets.append(
                Detection(
                    BBox(x1, y1, x1 + float(w), y1 + float(h)),
                    float(rng.uniform(0.05, 0.99)),
                    "car" if obj % 3 else "bus",
                    source=f"m{m + 1}",
                )
            )
        outputs.append(FrameDetections(0, tuple(dets), source=f"m{m + 1}"))
    return outputs


# ---- scalar == vectorized == auto ------------------------------------


@pytest.mark.parametrize("method_name", available_methods())
@given(per_detector=detector_outputs())
@settings(max_examples=40, deadline=None)
def test_modes_bit_identical(method_name, per_detector):
    method = create_method(method_name)
    method.fuse_mode = "scalar"
    scalar = method.fuse(per_detector)
    method.fuse_mode = "vectorized"
    vectorized = method.fuse(per_detector)
    method.fuse_mode = "auto"
    auto = method.fuse(per_detector)
    # Dataclass equality compares every coordinate and confidence exactly;
    # any ulp of drift in a kernel fails here.
    assert vectorized == scalar
    assert auto == scalar


@pytest.mark.parametrize("method_name", available_methods())
@pytest.mark.parametrize("iou_threshold", [0.3, 0.5, 0.7])
def test_modes_bit_identical_dense_pools(method_name, iou_threshold):
    """Large overlapping pools (the vectorized kernels' target regime)."""
    method = create_method(method_name)
    try:
        method.iou_threshold = iou_threshold
    except AttributeError:
        pass
    for seed, num_objects in ((1, 8), (2, 24), (3, 40)):
        outputs = _clustered_outputs(seed, num_objects)
        method.fuse_mode = "scalar"
        scalar = method.fuse(outputs)
        method.fuse_mode = "vectorized"
        assert method.fuse(outputs) == scalar, (method_name, seed)


@pytest.mark.parametrize("method_name", available_methods())
def test_modes_bit_identical_varied_params(method_name):
    """Confidence filtering and conf_type variants stay equivalent."""
    outputs = _clustered_outputs(7, 20)
    variants = [create_method(method_name)]
    base = variants[0]
    if hasattr(base, "confidence_threshold"):
        variants.append(create_method(method_name))
        variants[-1].confidence_threshold = 0.4
    if hasattr(base, "conf_type"):
        variants.append(create_method(method_name, conf_type="max"))
    for method in variants:
        method.fuse_mode = "scalar"
        scalar = method.fuse(outputs)
        method.fuse_mode = "vectorized"
        assert method.fuse(outputs) == scalar


# ---- tie-breaking ----------------------------------------------------


def _equal_confidence_pool(n: int = 10) -> list[Detection]:
    """All-equal confidences: any unstable ordering scrambles clusters."""
    return [
        Detection(
            BBox(10.0 * i, 0.0, 10.0 * i + 50.0, 40.0),
            0.5,
            "car",
            source=f"m{i % 3 + 1}",
        )
        for i in range(n)
    ]


def test_stable_confidence_order_breaks_ties_by_index():
    conf = np.asarray([0.5, 0.9, 0.5, 0.1, 0.9, 0.5])
    order = stable_confidence_order(conf)
    assert order.tolist() == [1, 4, 0, 2, 5, 3]
    expected = sorted(
        range(len(conf)), key=lambda i: conf[i], reverse=True
    )
    assert order.tolist() == expected


def test_cluster_by_iou_visits_equal_confidences_in_pool_order():
    pool = _equal_confidence_pool()
    clusters = cluster_by_iou(pool, iou_threshold=0.5)
    # With every confidence tied, representatives must appear in pool
    # order and each cluster's members must be index-sorted.
    reps = [cluster[0] for cluster in clusters]
    assert reps == sorted(reps)
    for cluster in clusters:
        assert cluster == sorted(cluster)


def test_greedy_iou_clusters_matches_scalar_clustering():
    for seed, num_objects in ((11, 6), (12, 18), (13, 30)):
        outputs = _clustered_outputs(seed, num_objects)
        pooled = FrameDetections.pool(0, outputs)
        for label, pool in partition_by_label(pooled).items():
            scalar = cluster_by_iou(pool.detections, 0.5)
            order = stable_confidence_order(pool.confidences)
            vectorized = greedy_iou_clusters(pool.iou(), order, 0.5)
            assert vectorized == scalar, (seed, label)


def test_greedy_iou_clusters_equal_confidence_ties():
    pool = ClassPool(_equal_confidence_pool())
    order = stable_confidence_order(pool.confidences)
    assert order.tolist() == list(range(len(pool)))
    assert greedy_iou_clusters(pool.iou(), order, 0.5) == cluster_by_iou(
        pool.detections, 0.5
    )


# ---- weighted_mean_box -----------------------------------------------


@pytest.mark.parametrize("size", [1, 3, 15, 16, 40])
def test_weighted_mean_box_matches_average_boxes(size):
    rng = np.random.default_rng(size)
    dets = []
    for _ in range(size):
        x1 = float(rng.uniform(0, 500))
        y1 = float(rng.uniform(0, 300))
        dets.append(
            Detection(
                BBox(x1, y1, x1 + float(rng.uniform(5, 80)),
                     y1 + float(rng.uniform(5, 60))),
                float(rng.uniform(0.01, 1.0)),
                "car",
            )
        )
    pool = ClassPool(dets)
    indices = list(range(size))
    weights = [d.confidence for d in dets]
    expected = average_boxes([d.box for d in dets], weights)
    assert weighted_mean_box(pool, indices, weights) == expected
    # Uniform weighting (weights=None) against explicit ones.
    uniform = average_boxes([d.box for d in dets], None)
    assert weighted_mean_box(pool, indices, None) == uniform


@pytest.mark.parametrize("size", [2, 20])
def test_weighted_mean_box_rejects_all_zero_weights(size):
    dets = [
        Detection(BBox(0.0, 0.0, 10.0, 10.0), 0.5, "car")
        for _ in range(size)
    ]
    pool = ClassPool(dets)
    with pytest.raises(ValueError, match="zero"):
        weighted_mean_box(pool, list(range(size)), [0.0] * size)


# ---- dispatch --------------------------------------------------------


def test_fuse_mode_validation():
    method = create_method("wbf")
    method.fuse_mode = "turbo"
    with pytest.raises(ValueError, match="unknown fuse_mode"):
        method.fuse([FrameDetections(0, (), source="m1")])


class _RecordingWBF:
    """Wraps a WBF instance, recording which kernel each pool took."""

    def __init__(self):
        self.method = create_method("wbf")
        self.calls: list[tuple[str, int]] = []
        original_scalar = type(self.method)._fuse_class
        original_arrays = type(self.method)._fuse_class_arrays

        def record_scalar(this, dets, num_models):
            self.calls.append(("scalar", len(dets)))
            return original_scalar(this, dets, num_models)

        def record_arrays(this, pool, num_models):
            self.calls.append(("vectorized", len(pool)))
            return original_arrays(this, pool, num_models)

        self.method._fuse_class = record_scalar.__get__(self.method)
        self.method._fuse_class_arrays = record_arrays.__get__(self.method)


def test_auto_mode_dispatches_on_pool_size():
    small = [
        Detection(BBox(0.0, 0.0, 10.0, 10.0), 0.9, "bus", source="m1")
        for _ in range(VECTORIZE_MIN_POOL - 1)
    ]
    large = [
        Detection(
            BBox(5.0 * i, 50.0, 5.0 * i + 30.0, 90.0), 0.8, "car",
            source="m1",
        )
        for i in range(VECTORIZE_MIN_POOL)
    ]
    frame = FrameDetections(0, tuple(small + large), source="m1")

    recorder = _RecordingWBF()
    recorder.method.fuse_mode = "auto"
    recorder.method.fuse([frame])
    assert ("scalar", len(small)) in recorder.calls
    assert ("vectorized", len(large)) in recorder.calls

    recorder = _RecordingWBF()
    recorder.method.fuse_mode = "scalar"
    recorder.method.fuse([frame])
    assert all(kind == "scalar" for kind, _ in recorder.calls)

    recorder = _RecordingWBF()
    recorder.method.fuse_mode = "vectorized"
    recorder.method.fuse([frame])
    assert all(kind == "vectorized" for kind, _ in recorder.calls)
