"""Unit tests for streaming execution and result serialization."""

import itertools

import pytest

from repro.core.baselines import BruteForce, SingleBest
from repro.core.mes import MES
from repro.runner.harness import TrialOutcome
from repro.runner.io import (
    load_result_json,
    outcomes_to_rows,
    result_to_dict,
    save_outcomes_csv,
    save_records_csv,
    save_result_json,
)


class TestStreaming:
    def test_stream_matches_batch(self, detector_pool, lidar, small_video):
        from repro.core.environment import DetectionEnvironment, EvaluationStore

        cache = EvaluationStore()
        env_batch = DetectionEnvironment(detector_pool, lidar, cache=cache)
        batch = MES(gamma=2).run(env_batch, small_video.frames)

        env_stream = DetectionEnvironment(detector_pool, lidar, cache=cache)
        streamed = list(
            MES(gamma=2).run_stream(env_stream, iter(small_video.frames))
        )
        assert [r.selected for r in streamed] == [
            r.selected for r in batch.records
        ]
        assert sum(r.true_score for r in streamed) == pytest.approx(batch.s_sum)

    def test_stream_is_lazy(self, environment, small_video):
        stream = MES(gamma=2).run_stream(environment, iter(small_video.frames))
        first_three = list(itertools.islice(stream, 3))
        assert len(first_three) == 3
        assert first_three[0].iteration == 1

    def test_stream_respects_budget(self, environment, small_video):
        records = list(
            BruteForce().run_stream(
                environment, iter(small_video.frames), budget_ms=100.0
            )
        )
        assert 0 < len(records) < len(small_video)

    def test_unbounded_stream(self, environment, small_video):
        """An infinite stream works; the consumer decides when to stop."""
        infinite = itertools.cycle(small_video.frames)
        # Re-index so frame indices stay unique per iteration key reuse.
        stream = MES(gamma=2).run_stream(environment, infinite)
        records = list(itertools.islice(stream, 45))
        assert len(records) == 45

    def test_prescan_algorithms_refuse_streams(self, environment, small_video):
        with pytest.raises(TypeError, match="stream"):
            next(
                SingleBest().run_stream(environment, iter(small_video.frames))
            )


class TestResultIO:
    @pytest.fixture
    def result(self, environment, small_video):
        return MES(gamma=2).run(environment, small_video.frames[:8])

    def test_json_roundtrip(self, result, tmp_path):
        path = tmp_path / "run.json"
        save_result_json(result, path)
        loaded = load_result_json(path)
        assert loaded.algorithm == result.algorithm
        assert loaded.budget_ms == result.budget_ms
        assert loaded.records == result.records
        assert loaded.s_sum == pytest.approx(result.s_sum)

    def test_result_to_dict_summary_fields(self, result):
        payload = result_to_dict(result)
        assert payload["frames_processed"] == 8
        assert payload["s_sum"] == pytest.approx(result.s_sum)
        assert len(payload["records"]) == 8

    def test_records_csv(self, result, tmp_path):
        path = tmp_path / "records.csv"
        save_records_csv(result, path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1 + 8
        assert lines[0].startswith("iteration,frame_index,selected")

    def test_outcomes_rows_and_csv(self, result, tmp_path):
        outcome = TrialOutcome(algorithm="MES")
        outcome.add(result)
        outcome.add(result)
        rows = outcomes_to_rows({"MES": outcome})
        assert len(rows) == 2
        assert rows[0]["algorithm"] == "MES"
        assert rows[1]["trial"] == 1

        path = tmp_path / "outcomes.csv"
        save_outcomes_csv({"MES": outcome}, path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3
