"""Unit tests for streaming execution and result serialization."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import BruteForce, SingleBest
from repro.core.mes import MES
from repro.core.selection import FrameRecord, SelectionResult
from repro.runner.harness import TrialOutcome
from repro.runner.io import (
    load_outcomes_csv,
    load_records_csv,
    load_result_json,
    outcomes_to_rows,
    result_to_dict,
    save_outcomes_csv,
    save_records_csv,
    save_result_json,
)


class TestStreaming:
    def test_stream_matches_batch(self, detector_pool, lidar, small_video):
        from repro.core.environment import DetectionEnvironment, EvaluationStore

        cache = EvaluationStore()
        env_batch = DetectionEnvironment(detector_pool, lidar, cache=cache)
        batch = MES(gamma=2).run(env_batch, small_video.frames)

        env_stream = DetectionEnvironment(detector_pool, lidar, cache=cache)
        streamed = list(
            MES(gamma=2).run_stream(env_stream, iter(small_video.frames))
        )
        assert [r.selected for r in streamed] == [
            r.selected for r in batch.records
        ]
        assert sum(r.true_score for r in streamed) == pytest.approx(batch.s_sum)

    def test_stream_is_lazy(self, environment, small_video):
        stream = MES(gamma=2).run_stream(environment, iter(small_video.frames))
        first_three = list(itertools.islice(stream, 3))
        assert len(first_three) == 3
        assert first_three[0].iteration == 1

    def test_stream_respects_budget(self, environment, small_video):
        records = list(
            BruteForce().run_stream(
                environment, iter(small_video.frames), budget_ms=100.0
            )
        )
        assert 0 < len(records) < len(small_video)

    def test_unbounded_stream(self, environment, small_video):
        """An infinite stream works; the consumer decides when to stop."""
        infinite = itertools.cycle(small_video.frames)
        # Re-index so frame indices stay unique per iteration key reuse.
        stream = MES(gamma=2).run_stream(environment, infinite)
        records = list(itertools.islice(stream, 45))
        assert len(records) == 45

    def test_prescan_algorithms_refuse_streams(self, environment, small_video):
        with pytest.raises(TypeError, match="stream"):
            next(
                SingleBest().run_stream(environment, iter(small_video.frames))
            )


class TestResultIO:
    @pytest.fixture
    def result(self, environment, small_video):
        return MES(gamma=2).run(environment, small_video.frames[:8])

    def test_json_roundtrip(self, result, tmp_path):
        path = tmp_path / "run.json"
        save_result_json(result, path)
        loaded = load_result_json(path)
        assert loaded.algorithm == result.algorithm
        assert loaded.budget_ms == result.budget_ms
        assert loaded.records == result.records
        assert loaded.s_sum == pytest.approx(result.s_sum)

    def test_result_to_dict_summary_fields(self, result):
        payload = result_to_dict(result)
        assert payload["frames_processed"] == 8
        assert payload["s_sum"] == pytest.approx(result.s_sum)
        assert len(payload["records"]) == 8

    def test_records_csv(self, result, tmp_path):
        path = tmp_path / "records.csv"
        save_records_csv(result, path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1 + 8
        assert lines[0].startswith("iteration,frame_index,selected")

    def test_records_csv_roundtrip_from_run(self, result, tmp_path):
        path = tmp_path / "records.csv"
        save_records_csv(result, path)
        assert load_records_csv(path) == list(result.records)

    def test_outcomes_rows_and_csv(self, result, tmp_path):
        outcome = TrialOutcome(algorithm="MES")
        outcome.add(result)
        outcome.add(result)
        rows = outcomes_to_rows({"MES": outcome})
        assert len(rows) == 2
        assert rows[0]["algorithm"] == "MES"
        assert rows[1]["trial"] == 1

        path = tmp_path / "outcomes.csv"
        save_outcomes_csv({"MES": outcome}, path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3


_NAMES = st.sampled_from(["yolo-c", "yolo-n", "yolo-r", "rcnn", "ref"])
_ENSEMBLES = st.lists(_NAMES, min_size=1, max_size=4, unique=True).map(tuple)
_FLOATS = st.floats(
    allow_nan=False, allow_infinity=False, width=64, min_value=-1e9,
    max_value=1e9,
)
_FRAME_RECORDS = st.builds(
    FrameRecord,
    iteration=st.integers(min_value=1, max_value=10**6),
    frame_index=st.integers(min_value=0, max_value=10**6),
    selected=_ENSEMBLES,
    est_score=_FLOATS,
    est_ap=_FLOATS,
    true_score=_FLOATS,
    true_ap=_FLOATS,
    cost_ms=_FLOATS,
    normalized_cost=_FLOATS,
    charged_ms=_FLOATS,
    realized=st.none() | _ENSEMBLES,
)


class TestCsvRoundTrip:
    """``load(save(x)) == x`` for both CSV formats (satellite S3).

    The writers serialize bools, ``None`` (the ``realized`` field of
    fault-free frames) and floats; the loaders must coerce them back to
    the exact original values, not leave raw strings behind.
    """

    @settings(max_examples=60, deadline=None)
    @given(records=st.lists(_FRAME_RECORDS, max_size=12))
    def test_records_roundtrip_property(self, records, tmp_path_factory):
        path = tmp_path_factory.mktemp("csv") / "records.csv"
        result = SelectionResult(
            algorithm="prop", records=list(records), budget_ms=None
        )
        save_records_csv(result, path)
        loaded = load_records_csv(path)
        assert loaded == list(records)
        # None-ness survives explicitly: no realized column collapses to
        # the realized_key fallback.
        assert [r.realized for r in loaded] == [r.realized for r in records]
        assert [r.degraded for r in loaded] == [r.degraded for r in records]

    @settings(max_examples=40, deadline=None)
    @given(
        data=st.dictionaries(
            st.sampled_from(["MES", "MES-B", "SW-MES", "OPT"]),
            st.lists(
                st.tuples(_FLOATS, _FLOATS, _FLOATS,
                          st.integers(min_value=0, max_value=10**4)),
                min_size=1,
                max_size=5,
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_outcomes_roundtrip_property(self, data, tmp_path_factory):
        path = tmp_path_factory.mktemp("csv") / "outcomes.csv"
        outcomes = {}
        for name, rows in data.items():
            outcome = TrialOutcome(algorithm=name)
            for s_sum, mean_ap, mean_cost, frames in rows:
                outcome.s_sum.append(s_sum)
                outcome.mean_ap.append(mean_ap)
                outcome.mean_cost.append(mean_cost)
                outcome.frames_processed.append(frames)
            outcomes[name] = outcome
        save_outcomes_csv(outcomes, path)
        assert load_outcomes_csv(path) == outcomes

    def test_realized_none_distinct_from_realized_equal_selected(
        self, tmp_path
    ):
        base = dict(
            iteration=1, frame_index=0, est_score=0.5, est_ap=0.5,
            true_score=0.5, true_ap=0.5, cost_ms=1.0, normalized_cost=0.1,
            charged_ms=1.0,
        )
        records = [
            FrameRecord(selected=("a", "b"), realized=None, **base),
            FrameRecord(selected=("a", "b"), realized=("a",), **base),
        ]
        path = tmp_path / "records.csv"
        save_records_csv(
            SelectionResult(algorithm="x", records=records, budget_ms=None),
            path,
        )
        loaded = load_records_csv(path)
        assert loaded[0].realized is None
        assert not loaded[0].degraded
        assert loaded[1].realized == ("a",)
        assert loaded[1].degraded

    def test_records_loader_rejects_wrong_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("iteration,frame_index\n1,0\n")
        with pytest.raises(ValueError, match="header"):
            load_records_csv(path)

    def test_outcomes_loader_rejects_wrong_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("algorithm,s_sum\nMES,1.0\n")
        with pytest.raises(ValueError, match="header"):
            load_outcomes_csv(path)

    def test_records_loader_rejects_inconsistent_degraded(self, tmp_path):
        path = tmp_path / "bad.csv"
        header = (
            "iteration,frame_index,selected,est_score,est_ap,true_score,"
            "true_ap,cost_ms,normalized_cost,charged_ms,realized,degraded"
        )
        path.write_text(header + "\n1,0,a+b,0,0,0,0,0,0,0,,True\n")
        with pytest.raises(ValueError, match="inconsistent"):
            load_records_csv(path)
