"""Unit tests for RNG derivation and validators."""

import pytest

from repro.utils.rng import derive_rng, derive_seed, spawn_seeds
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestRng:
    def test_derive_seed_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_derive_seed_key_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_no_concatenation_collision(self):
        # ("ab",) and ("a", "b") must not collide.
        assert derive_seed(0, "ab") != derive_seed(0, "a", "b")

    def test_derive_rng_streams_independent(self):
        a = derive_rng(0, "x").random(5)
        b = derive_rng(0, "y").random(5)
        assert list(a) != list(b)

    def test_derive_rng_reproducible(self):
        assert list(derive_rng(0, "x").random(5)) == list(
            derive_rng(0, "x").random(5)
        )

    def test_spawn_seeds(self):
        seeds = spawn_seeds(7, 10)
        assert len(seeds) == 10
        assert len(set(seeds)) == 10

    def test_spawn_seeds_negative(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)


class TestValidators:
    def test_check_positive(self):
        assert check_positive(1.5, "x") == 1.5
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError, match="x"):
                check_positive(bad, "x")

    def test_check_non_negative(self):
        assert check_non_negative(0.0, "x") == 0.0
        with pytest.raises(ValueError):
            check_non_negative(-0.1, "x")

    def test_check_probability(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        for bad in (-0.01, 1.01, float("nan")):
            with pytest.raises(ValueError):
                check_probability(bad, "p")

    def test_check_fraction(self):
        assert check_fraction(1.0, "f") == 1.0
        for bad in (0.0, 1.5):
            with pytest.raises(ValueError):
                check_fraction(bad, "f")
