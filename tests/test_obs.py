"""Unit tests for the observability layer (tracer, metrics, events, export)."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    EVENT_SCHEMAS,
    NULL_OBS,
    NULL_SPAN,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    Observability,
    RunEventLog,
    Tracer,
    metrics_to_json,
    metrics_to_prometheus,
    write_events_jsonl,
    write_metrics,
    write_trace_json,
)


class TestTracer:
    def test_nesting_parents_spans(self):
        tracer = Tracer()
        with tracer.span("frame", iteration=1) as frame:
            with tracer.span("select") as select:
                pass
            with tracer.span("detect"):
                tracer.add_span("detect-model", sim_ms=5.0, model="m")
        spans = {s.name: s for s in tracer.finished()}
        assert spans["select"].parent_id == frame.span_id
        assert spans["detect"].parent_id == frame.span_id
        assert spans["detect-model"].parent_id == spans["detect"].span_id
        assert frame.parent_id is None
        assert select.attributes == {}
        assert spans["frame"].attributes == {"iteration": 1}

    def test_children_recorded_before_parents(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.finished()] == ["inner", "outer"]

    def test_exception_marks_error_status(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("bad"):
                raise RuntimeError("boom")
        [span] = tracer.finished()
        assert span.status == "error"

    def test_injected_timer_measures_wall_ms(self):
        ticks = iter([1.0, 1.5])
        tracer = Tracer(timer=lambda: next(ticks))
        with tracer.span("work"):
            pass
        [span] = tracer.finished()
        assert span.wall_ms == pytest.approx(500.0)

    def test_no_timer_records_zero_wall_ms(self):
        tracer = Tracer()
        with tracer.span("work"):
            pass
        assert tracer.finished()[0].wall_ms == 0.0

    def test_sim_ms_is_explicit(self):
        tracer = Tracer()
        with tracer.span("frame") as span:
            span.set_sim_ms(42.0)
        assert tracer.finished()[0].sim_ms == 42.0

    def test_retention_bound_drops_oldest(self):
        tracer = Tracer(max_spans=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert tracer.dropped == 2
        assert [s.name for s in tracer.finished()] == ["s2", "s3", "s4"]

    def test_max_spans_validated(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)

    def test_null_span_mutators_are_inert(self):
        NULL_SPAN.set(foo=1)
        NULL_SPAN.set_sim_ms(99.0)
        NULL_SPAN.set_status("error")
        assert NULL_SPAN.attributes == {}
        assert NULL_SPAN.sim_ms == 0.0
        assert NULL_SPAN.status == "ok"


class TestMetrics:
    def test_counter_labels_separate_series(self):
        registry = MetricsRegistry()
        registry.counter("jobs", model="a").inc()
        registry.counter("jobs", model="a").inc(2.0)
        registry.counter("jobs", model="b").inc()
        snap = registry.snapshot()
        assert snap.counter_value("jobs", model="a") == 3.0
        assert snap.counter_value("jobs", model="b") == 1.0
        assert snap.counter_total("jobs") == 4.0
        assert snap.counter_value("jobs", model="zzz") == 0.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            MetricsRegistry().counter("c").inc(-1.0)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(5.0)
        registry.gauge("g").set(2.0)
        registry.gauge("g").add(1.0)
        assert registry.snapshot().gauge_value("g") == 3.0

    def test_histogram_bucket_placement(self):
        hist = Histogram(buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 1.0, 3.0, 10.0, 99.0):
            hist.observe(value)
        snap = hist.snapshot()
        # value <= bound lands in the bucket; 99.0 overflows to +Inf.
        assert snap.counts == (2, 1, 1, 1)
        assert snap.count == 5
        assert snap.total == pytest.approx(113.5)

    def test_histogram_buckets_validated(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=(5.0, 1.0))

    def test_histogram_merge_requires_same_buckets(self):
        a = Histogram(buckets=(1.0, 2.0))
        b = Histogram(buckets=(1.0, 3.0))
        with pytest.raises(ValueError, match="different buckets"):
            a.snapshot().merged(b.snapshot())

    def test_snapshot_merge(self):
        left = MetricsRegistry()
        right = MetricsRegistry()
        left.counter("frames").inc(3)
        right.counter("frames").inc(4)
        right.counter("retries").inc(1)
        left.gauge("budget").set(10.0)
        right.gauge("budget").set(20.0)
        left.histogram("lat", buckets=(1.0, 2.0)).observe(0.5)
        right.histogram("lat", buckets=(1.0, 2.0)).observe(1.5)
        merged = left.snapshot().merge(right.snapshot())
        assert merged.counter_value("frames") == 7.0
        assert merged.counter_value("retries") == 1.0
        assert merged.gauge_value("budget") == 20.0  # right wins
        hist = merged.histogram_snapshot("lat")
        assert hist is not None
        assert hist.counts == (1, 1, 0)
        assert hist.count == 2

    def test_snapshot_is_immutable_view(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        snap = registry.snapshot()
        registry.counter("c").inc()
        assert snap.counter_value("c") == 1.0
        with pytest.raises(TypeError):
            snap.counters[("c", ())] = 99.0  # type: ignore[index]

    def test_split_registries_merge_to_single_run_totals(self):
        """The property that makes per-worker registries sound: merging
        shards equals recording everything in one registry."""
        single = MetricsRegistry()
        shards = [MetricsRegistry() for _ in range(3)]
        for i in range(9):
            single.counter("frames", algorithm="mes").inc()
            single.histogram("ms", buckets=(5.0, 50.0)).observe(float(i))
            shard = shards[i % 3]
            shard.counter("frames", algorithm="mes").inc()
            shard.histogram("ms", buckets=(5.0, 50.0)).observe(float(i))
        merged = MetricsSnapshot()
        for shard in shards:
            merged = merged.merge(shard.snapshot())
        assert merged.as_dict() == single.snapshot().as_dict()

    def test_first_description_wins(self):
        registry = MetricsRegistry()
        registry.counter("c", "first")
        registry.counter("c", "second")
        assert registry.snapshot().descriptions["c"] == "first"


class TestEvents:
    def test_schema_enforced_exactly(self):
        log = RunEventLog()
        with pytest.raises(ValueError, match="unknown event type"):
            log.emit("made-up")
        with pytest.raises(ValueError, match="missing fields"):
            log.emit("budget", algorithm="mes")
        with pytest.raises(ValueError, match="unknown fields"):
            log.emit(
                "budget",
                algorithm="mes",
                budget_ms=1.0,
                spent_ms=1.0,
                frames=1,
                exhausted=False,
                extra=1,
            )

    def test_degradation_kind_validated(self):
        log = RunEventLog()
        with pytest.raises(ValueError, match="kind"):
            log.emit(
                "degradation",
                algorithm="mes",
                iteration=1,
                frame_index=0,
                kind="vaporized",
                selected="a",
                realized=None,
                failed_models=[],
            )

    def test_seq_is_monotonic_and_filter_works(self):
        log = RunEventLog()
        log.emit(
            "budget",
            algorithm="mes",
            budget_ms=1.0,
            spent_ms=0.5,
            frames=3,
            exhausted=False,
        )
        log.emit("circuit-transition", model="m", from_state="closed",
                 to_state="open", batch=7)
        assert [e["seq"] for e in log.events()] == [1, 2]
        [transition] = log.events("circuit-transition")
        assert transition["to_state"] == "open"
        assert log.events("budget")[0]["frames"] == 3

    def test_retention_bound(self):
        log = RunEventLog(max_events=2)
        for i in range(4):
            log.emit(
                "budget",
                algorithm="mes",
                budget_ms=1.0,
                spent_ms=float(i),
                frames=i,
                exhausted=False,
            )
        assert log.dropped == 2
        assert [e["frames"] for e in log.events()] == [2, 3]

    def test_every_schema_is_emittable(self):
        log = RunEventLog()
        defaults = {"kind": "degraded", "realized": None, "failed_models": []}
        for event_type, schema in EVENT_SCHEMAS.items():
            fields = {name: defaults.get(name, 1) for name in schema}
            log.emit(event_type, **fields)
        assert len(log.events()) == len(EVENT_SCHEMAS)


class TestExporters:
    def _snapshot(self):
        registry = MetricsRegistry()
        registry.counter("repro_frames_total", "Frames", algorithm="mes").inc(3)
        registry.gauge("repro_budget_spent_ms", "Spent").set(12.5)
        hist = registry.histogram(
            "repro_frame_charged_ms", buckets=(10.0, 100.0), description="Charged"
        )
        hist.observe(5.0)
        hist.observe(50.0)
        hist.observe(500.0)
        return registry.snapshot()

    def test_prometheus_format(self):
        text = metrics_to_prometheus(self._snapshot())
        lines = text.splitlines()
        assert "# HELP repro_frames_total Frames" in lines
        assert "# TYPE repro_frames_total counter" in lines
        assert 'repro_frames_total{algorithm="mes"} 3' in lines
        assert "# TYPE repro_budget_spent_ms gauge" in lines
        assert "repro_budget_spent_ms 12.5" in lines
        # Cumulative buckets plus +Inf, _sum and _count.
        assert 'repro_frame_charged_ms_bucket{le="10"} 1' in lines
        assert 'repro_frame_charged_ms_bucket{le="100"} 2' in lines
        assert 'repro_frame_charged_ms_bucket{le="+Inf"} 3' in lines
        assert "repro_frame_charged_ms_sum 555" in lines
        assert "repro_frame_charged_ms_count 3" in lines
        assert text.endswith("\n")

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("c", model='we"ird\\name').inc()
        text = metrics_to_prometheus(registry.snapshot())
        assert 'c{model="we\\"ird\\\\name"} 1' in text

    def test_empty_snapshot_exports_empty(self):
        assert metrics_to_prometheus(MetricsSnapshot()) == ""
        assert json.loads(metrics_to_json(MetricsSnapshot())) == {
            "counters": [],
            "gauges": [],
            "histograms": [],
            "descriptions": {},
        }

    def test_json_is_deterministic(self):
        assert metrics_to_json(self._snapshot()) == metrics_to_json(
            self._snapshot()
        )

    def test_write_metrics_picks_format_by_extension(self, tmp_path):
        snap = self._snapshot()
        prom = tmp_path / "m.prom"
        js = tmp_path / "m.json"
        write_metrics(str(prom), snap)
        write_metrics(str(js), snap)
        assert prom.read_text().startswith("# HELP")
        payload = json.loads(js.read_text())
        assert payload["counters"][0]["name"] == "repro_frames_total"

    def test_write_trace_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("frame", iteration=1):
            tracer.add_span("detect-model", sim_ms=4.0, model="m")
        path = tmp_path / "trace.json"
        write_trace_json(str(path), tracer)
        payload = json.loads(path.read_text())
        assert payload["dropped"] == 0
        assert [s["name"] for s in payload["spans"]] == ["detect-model", "frame"]

    def test_write_events_jsonl(self, tmp_path):
        log = RunEventLog()
        log.emit("circuit-transition", model="m", from_state="closed",
                 to_state="open", batch=1)
        path = tmp_path / "events.jsonl"
        write_events_jsonl(str(path), log)
        [line] = path.read_text().splitlines()
        assert json.loads(line)["type"] == "circuit-transition"


class TestObservabilityFacade:
    def test_levels(self):
        off = Observability(level="off")
        metrics = Observability(level="metrics")
        trace = Observability(level="trace")
        assert (off.metrics, off.events, off.tracer) == (None, None, None)
        assert metrics.metrics is not None and metrics.events is not None
        assert metrics.tracer is None
        assert trace.tracer is not None
        with pytest.raises(ValueError, match="obs level"):
            Observability(level="verbose")

    def test_off_helpers_are_inert(self):
        obs = Observability(level="off")
        obs.count("c")
        obs.observe("h", 1.0)
        obs.set_gauge("g", 1.0)
        obs.event("budget", algorithm="x", budget_ms=1.0, spent_ms=1.0,
                  frames=1, exhausted=False)
        with obs.span("frame") as span:
            span.set_sim_ms(5.0)
        assert span is NULL_SPAN
        assert obs.snapshot() == MetricsSnapshot()

    def test_off_span_context_is_shared_singleton(self):
        """The off path must not allocate per call (the zero-cost claim)."""
        obs = Observability(level="off")
        assert obs.span("a") is obs.span("b")
        assert NULL_OBS.span("frame") is obs.span("c")

    def test_metrics_level_records_but_does_not_trace(self):
        obs = Observability(level="metrics")
        obs.count("frames", algorithm="mes")
        obs.observe("ms", 3.0, buckets=(1.0, 5.0))
        with obs.span("frame") as span:
            pass
        assert span is NULL_SPAN
        snap = obs.snapshot()
        assert snap.counter_value("frames", algorithm="mes") == 1.0
        assert snap.histogram_snapshot("ms").count == 1

    def test_trace_level_spans(self):
        obs = Observability(level="trace")
        with obs.span("frame", iteration=3) as span:
            obs.add_span("retry", sim_ms=2.0, model="m", attempt=1)
        assert span is not NULL_SPAN
        names = [s.name for s in obs.tracer.finished()]
        assert names == ["retry", "frame"]

    def test_null_obs_is_off(self):
        assert NULL_OBS.level == "off"
        assert NULL_OBS.metrics is None
