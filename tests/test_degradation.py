"""Graceful degradation: realized subsets, masking, abandoned frames."""

from __future__ import annotations

import pytest

from repro.core.environment import (
    DetectionEnvironment,
    FaultStats,
    FrameEvaluationError,
)
from repro.core.mes import MES
from repro.engine.backends import SerialBackend
from repro.engine.resilience import BreakerPolicy, ResilientBackend, RetryPolicy
from repro.runner.io import load_result_json, save_result_json
from repro.simulation.faults import FaultSpec, FaultyDetector


def _resilient(**kwargs):
    kwargs.setdefault("retry", RetryPolicy(max_attempts=2, jitter_ms=0.0))
    kwargs.setdefault(
        "breaker", BreakerPolicy(failure_threshold=2, cooldown_batches=3)
    )
    return ResilientBackend(SerialBackend(), **kwargs)


def _env_with_outage(detector_pool, lidar, down=(0,), backend=None):
    """An environment where the detectors at ``down`` are always out."""
    pool = [
        FaultyDetector(d, FaultSpec(outage=(0, 10**9)), seed=i)
        if i in down
        else d
        for i, d in enumerate(detector_pool)
    ]
    return DetectionEnvironment(
        pool, lidar, backend=backend if backend is not None else _resilient()
    )


class TestRealizedSubsets:
    def test_full_ensemble_realizes_healthy_subset(
        self, detector_pool, lidar, simple_frame
    ):
        env = _env_with_outage(detector_pool, lidar)
        down = detector_pool[0].name
        batch = env.evaluate(simple_frame, [env.full_ensemble])
        assert batch.failed_models == (down,)
        assert batch.degraded
        evaluation = batch.evaluations[env.full_ensemble]
        assert evaluation.degraded
        expected = tuple(m for m in env.full_ensemble if m != down)
        assert evaluation.realized == expected
        assert evaluation.realized_key == expected

    def test_realized_scores_match_direct_subset_run(
        self, detector_pool, lidar, simple_frame
    ):
        """The fallback is *recomputed* fusion over survivors — identical
        to evaluating the healthy subset in a fault-free environment."""
        env = _env_with_outage(detector_pool, lidar)
        batch = env.evaluate(simple_frame, [env.full_ensemble], charge=False)
        degraded_eval = batch.evaluations[env.full_ensemble]
        clean_env = DetectionEnvironment(detector_pool[1:], lidar)
        clean_eval = clean_env.evaluate(
            simple_frame, [degraded_eval.realized], charge=False
        ).evaluations[degraded_eval.realized]
        assert degraded_eval.est_ap == clean_eval.est_ap
        assert degraded_eval.true_ap == clean_eval.true_ap
        assert degraded_eval.detections == clean_eval.detections

    def test_billing_covers_healthy_members_only(
        self, detector_pool, lidar, simple_frame
    ):
        env = _env_with_outage(detector_pool, lidar)
        batch = env.evaluate(simple_frame, [env.full_ensemble])
        healthy_ms = sum(
            env._single_output(simple_frame, m).inference_time_ms
            for m in batch.evaluations[env.full_ensemble].realized
        )
        assert batch.detector_ms == pytest.approx(healthy_ms)
        assert env.clock.detector_ms == pytest.approx(healthy_ms)

    def test_collapsed_realizations_bill_fusion_once(
        self, detector_pool, lidar, simple_frame
    ):
        """Requested ensembles that realize to the same subset pay one
        fusion, and observations() deduplicates them."""
        env = _env_with_outage(detector_pool, lidar)
        down = detector_pool[0].name
        survivors = tuple(m for m in env.full_ensemble if m != down)
        requested = [env.full_ensemble, survivors]
        batch = env.evaluate(simple_frame, requested, charge=False)
        assert len(batch.evaluations) == 2
        realized = {e.realized_key for e in batch.evaluations.values()}
        assert realized == {survivors}
        assert batch.ensembling_ms == pytest.approx(
            batch.evaluations[survivors].ensembling_ms
        )
        observations = list(batch.observations())
        assert len(observations) == 1
        assert observations[0][0] == survivors

    def test_requested_ensemble_with_no_member_dropped(
        self, detector_pool, lidar, simple_frame
    ):
        env = _env_with_outage(detector_pool, lidar)
        down_key = (detector_pool[0].name,)
        other = (detector_pool[1].name,)
        batch = env.evaluate(simple_frame, [down_key, other])
        assert down_key not in batch.evaluations
        assert other in batch.evaluations
        assert batch.ensembles_dropped == 1

    def test_all_dropped_raises(self, detector_pool, lidar, simple_frame):
        env = _env_with_outage(detector_pool, lidar)
        with pytest.raises(FrameEvaluationError, match="healthy"):
            env.evaluate(simple_frame, [(detector_pool[0].name,)])

    def test_fault_free_runs_unchanged(
        self, detector_pool, lidar, simple_frame
    ):
        """No faults: realized == requested and nothing is degraded."""
        env = DetectionEnvironment(detector_pool, lidar)
        batch = env.evaluate(simple_frame, env.all_ensembles)
        assert not batch.degraded
        assert batch.failed_models == ()
        for key, evaluation in batch.evaluations.items():
            assert evaluation.realized == key
            assert not evaluation.degraded


class TestSelectionUnderFaults:
    def test_mes_survives_sustained_outage(
        self, detector_pool, lidar, small_video
    ):
        env = _env_with_outage(detector_pool, lidar)
        result = MES(gamma=3).run(env, small_video.frames[:15])
        assert result.frames_processed == 15  # nothing aborted the run
        assert result.frames_degraded > 0
        degraded = [r for r in result.records if r.degraded]
        down = detector_pool[0].name
        for record in degraded:
            assert down in record.selected
            assert down not in record.realized_key

    def test_masking_after_breaker_opens(
        self, detector_pool, lidar, small_video
    ):
        env = _env_with_outage(detector_pool, lidar)
        MES(gamma=3).run(env, small_video.frames[:10])
        down = detector_pool[0].name
        # The sustained outage must have opened the circuit at least once;
        # at that moment available_ensembles() hides the dead arm.
        assert env.fault_stats().breaker_opens > 0
        if down in env.unavailable_detectors():
            available = env.available_ensembles()
            assert all(down not in key for key in available)
            assert len(available) < len(env.all_ensembles)

    def test_all_detectors_down_abandons_frames(
        self, detector_pool, lidar, small_video
    ):
        env = _env_with_outage(
            detector_pool, lidar, down=tuple(range(len(detector_pool)))
        )
        frames = small_video.frames[:6]
        result = MES(gamma=2).run(env, frames)
        assert result.frames_processed == 0
        assert env.fault_stats().frames_abandoned == len(frames)

    def test_fault_stats_merges_backend_and_frame_counters(
        self, detector_pool, lidar, small_video
    ):
        env = _env_with_outage(detector_pool, lidar)
        result = MES(gamma=3).run(env, small_video.frames[:12])
        stats = env.fault_stats()
        assert stats.failures > 0
        assert stats.frames_degraded == result.frames_degraded
        assert stats.frames_abandoned == 0

    def test_fault_free_stats_are_all_zero(
        self, detector_pool, lidar, small_video
    ):
        env = DetectionEnvironment(detector_pool, lidar)
        MES(gamma=2).run(env, small_video.frames[:6])
        assert env.fault_stats() == FaultStats()


class TestRecordSerialization:
    def test_realized_round_trips_through_json(
        self, detector_pool, lidar, small_video, tmp_path
    ):
        env = _env_with_outage(detector_pool, lidar)
        result = MES(gamma=3).run(env, small_video.frames[:10])
        assert result.frames_degraded > 0
        path = tmp_path / "run.json"
        save_result_json(result, path)
        loaded = load_result_json(path)
        assert loaded.records == result.records
        assert loaded.frames_degraded == result.frames_degraded
