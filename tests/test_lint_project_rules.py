"""Fixture tests for the whole-program rules RPR006–RPR009.

Each rule gets true-positive fixtures (the violation fires, with the
evidence the rule promises: RPR006 names the untainted origin, RPR007
carries the full call chain) and false-positive fixtures (the sanctioned
idiom stays clean).  Fixtures are in-memory ``{path: source}`` trees fed
through :func:`repro.lint.lint_project`; virtual paths determine module
names exactly as on disk.
"""

from __future__ import annotations

import textwrap

from repro.lint import LintConfig, Violation, lint_project


def run(
    sources: dict[str, str],
    select: set[str],
    config: LintConfig | None = None,
) -> list[Violation]:
    dedented = {path: textwrap.dedent(src) for path, src in sources.items()}
    return lint_project(dedented, select=select, config=config)


# ---------------------------------------------------------------------------
# RPR006 — seed-flow taint


def test_rpr006_ambient_rng_crossing_into_core_fires() -> None:
    violations = run(
        {
            "src/repro/runner/helpers.py": """
            import numpy as np

            from repro.core.mes import choose

            def make_rng():
                return np.random.default_rng()

            def drive():
                rng = make_rng()
                return choose(rng)
            """,
            "src/repro/core/mes.py": """
            def choose(rng):
                return rng.integers(0, 4)
            """,
        },
        select={"RPR006"},
    )
    assert [v.rule_id for v in violations] == ["RPR006"]
    message = violations[0].message
    # The finding names the untainted origin: construct, reason, site.
    assert "numpy.random.default_rng()" in message
    assert "no seed argument" in message
    assert "src/repro/runner/helpers.py:7" in message
    # ... the entry point it reached ...
    assert "repro.core.mes.choose" in message
    # ... and the flow that carried it there.
    assert "constructed in repro.runner.helpers.make_rng" in message
    assert "derive_rng" in message  # the suggested fix


def test_rpr006_hardcoded_seed_is_still_ambient() -> None:
    violations = run(
        {
            "src/repro/runner/helpers.py": """
            import numpy as np

            from repro.simulation.world import step

            def drive():
                rng = np.random.default_rng(42)
                return step(rng)
            """,
            "src/repro/simulation/world.py": """
            def step(rng):
                return rng.random()
            """,
        },
        select={"RPR006"},
    )
    assert [v.rule_id for v in violations] == ["RPR006"]
    assert "hardcoded seed 42" in violations[0].message


def test_rpr006_derived_rng_is_clean() -> None:
    violations = run(
        {
            "src/repro/utils/rng.py": """
            import numpy as np

            def derive_rng(seed, *key):
                return np.random.default_rng(seed)
            """,
            "src/repro/runner/helpers.py": """
            from repro.core.mes import choose
            from repro.utils.rng import derive_rng

            def drive(seed):
                rng = derive_rng(seed, "mes")
                return choose(rng)
            """,
            "src/repro/core/mes.py": """
            def choose(rng):
                return rng.integers(0, 4)
            """,
        },
        select={"RPR006"},
    )
    assert violations == []


def test_rpr006_explicit_seed_parameter_is_clean() -> None:
    violations = run(
        {
            "src/repro/runner/helpers.py": """
            import numpy as np

            from repro.core.mes import choose

            def drive(seed):
                rng = np.random.default_rng(seed)
                return choose(rng)
            """,
            "src/repro/core/mes.py": """
            def choose(rng):
                return rng.integers(0, 4)
            """,
        },
        select={"RPR006"},
    )
    assert violations == []


def test_rpr006_unscoped_layers_are_not_sinks() -> None:
    # tracking/ is not one of the protected layers; ambient RNG flowing
    # there is not this rule's business.
    violations = run(
        {
            "src/repro/runner/helpers.py": """
            import numpy as np

            from repro.tracking.sort import track

            def drive():
                return track(np.random.default_rng())
            """,
            "src/repro/tracking/sort.py": """
            def track(rng):
                return rng.random()
            """,
        },
        select={"RPR006"},
    )
    assert violations == []


# ---------------------------------------------------------------------------
# RPR007 — interprocedural lockset


RPR007_TP = {
    "src/repro/runner/dispatch.py": """
    from repro.engine.work import record

    def job(key):
        return record(key)

    def drive(backend, jobs):
        return [backend.run(job) for _ in jobs]
    """,
    "src/repro/engine/work.py": """
    _RESULTS = {}

    def record(key):
        _RESULTS[key] = key
        return key
    """,
}


def test_rpr007_cross_module_unlocked_write_fires_with_chain() -> None:
    violations = run(RPR007_TP, select={"RPR007"})
    assert [v.rule_id for v in violations] == ["RPR007"]
    violation = violations[0]
    # The finding lands on the mutation, in the module that owns it.
    assert violation.path == "src/repro/engine/work.py"
    assert "_RESULTS" in violation.message
    # ... and carries the full chain from the submission site.
    assert (
        "submitted repro.runner.dispatch.job (src/repro/runner/dispatch.py:8)"
        in violation.message
    )
    assert (
        "repro.engine.work.record (called at src/repro/runner/dispatch.py:5)"
        in violation.message
    )


def test_rpr007_lock_held_by_caller_propagates_down() -> None:
    violations = run(
        {
            "src/repro/runner/dispatch.py": """
            import threading

            from repro.engine.work import record

            _LOCK = threading.Lock()

            def job(key):
                with _LOCK:
                    return record(key)

            def drive(backend, jobs):
                return [backend.run(job) for _ in jobs]
            """,
            "src/repro/engine/work.py": RPR007_TP["src/repro/engine/work.py"],
        },
        select={"RPR007"},
    )
    assert violations == []


def test_rpr007_lock_held_at_mutation_is_clean() -> None:
    violations = run(
        {
            "src/repro/runner/dispatch.py": RPR007_TP[
                "src/repro/runner/dispatch.py"
            ],
            "src/repro/engine/work.py": """
            import threading

            _RESULTS = {}
            _LOCK = threading.Lock()

            def record(key):
                with _LOCK:
                    _RESULTS[key] = key
                return key
            """,
        },
        select={"RPR007"},
    )
    assert violations == []


def test_rpr007_depth_one_same_module_left_to_rpr004() -> None:
    # The one-hop, single-module shape is RPR004's finding; RPR007 must
    # not double-report it.
    violations = run(
        {
            "src/repro/runner/dispatch.py": """
            _RESULTS = {}

            def job(key):
                _RESULTS[key] = key

            def drive(backend, jobs):
                return [backend.run(job) for _ in jobs]
            """,
        },
        select={"RPR007"},
    )
    assert violations == []


def test_rpr007_two_hop_chain_lists_every_hop() -> None:
    violations = run(
        {
            "src/repro/runner/dispatch.py": """
            from repro.engine.work import outer

            def drive(backend, jobs):
                return [backend.submit(outer) for _ in jobs]
            """,
            "src/repro/engine/work.py": """
            from repro.engine.store import stash

            def outer(key):
                return stash(key)
            """,
            "src/repro/engine/store.py": """
            _STORE = {}

            def stash(key):
                _STORE[key] = key
            """,
        },
        select={"RPR007"},
    )
    assert [v.rule_id for v in violations] == ["RPR007"]
    message = violations[0].message
    assert "submitted repro.engine.work.outer" in message
    assert "repro.engine.store.stash" in message
    assert violations[0].path == "src/repro/engine/store.py"


# ---------------------------------------------------------------------------
# RPR008 — resource / exception safety


def test_rpr008_unreleased_backend_fires() -> None:
    violations = run(
        {
            "src/repro/runner/exec.py": """
            from repro.engine.backends import make_backend

            def drive(jobs):
                backend = make_backend("thread")
                return [backend.run(j) for j in jobs]
            """,
        },
        select={"RPR008"},
    )
    assert [v.rule_id for v in violations] == ["RPR008"]
    assert "never released" in violations[0].message
    assert "'backend'" in violations[0].message


def test_rpr008_fallthrough_only_release_fires() -> None:
    violations = run(
        {
            "src/repro/runner/exec.py": """
            from repro.engine.backends import make_backend

            def drive(jobs):
                backend = make_backend("thread")
                results = [backend.run(j) for j in jobs]
                backend.close()
                return results
            """,
        },
        select={"RPR008"},
    )
    assert [v.rule_id for v in violations] == ["RPR008"]
    assert "fall-through path" in violations[0].message


def test_rpr008_with_statement_is_clean() -> None:
    violations = run(
        {
            "src/repro/runner/exec.py": """
            from repro.engine.backends import make_backend

            def drive(jobs):
                backend = make_backend("thread")
                with backend:
                    return [backend.run(j) for j in jobs]
            """,
        },
        select={"RPR008"},
    )
    assert violations == []


def test_rpr008_try_finally_release_is_clean() -> None:
    violations = run(
        {
            "src/repro/runner/exec.py": """
            from repro.engine.backends import make_backend

            def drive(jobs):
                backend = make_backend("thread")
                try:
                    return [backend.run(j) for j in jobs]
                finally:
                    backend.close()
            """,
        },
        select={"RPR008"},
    )
    assert violations == []


def test_rpr008_returned_handle_transfers_ownership() -> None:
    violations = run(
        {
            "src/repro/runner/exec.py": """
            from repro.engine.backends import make_backend

            def open_backend(kind):
                backend = make_backend(kind)
                return backend
            """,
        },
        select={"RPR008"},
    )
    assert violations == []


def test_rpr008_detect_outside_try_in_jobresult_fn_fires() -> None:
    violations = run(
        {
            "src/repro/engine/worker.py": """
            from repro.engine.types import JobResult

            def run_job(detector, frame) -> JobResult:
                boxes = detector.detect(frame)
                return JobResult(status="ok", boxes=boxes)
            """,
            "src/repro/engine/types.py": """
            class JobResult:
                def __init__(self, status, boxes=None):
                    self.status = status
                    self.boxes = boxes
            """,
        },
        select={"RPR008"},
    )
    assert [v.rule_id for v in violations] == ["RPR008"]
    assert "JobResult" in violations[0].message
    assert "detect()" in violations[0].message


def test_rpr008_detect_inside_try_except_exception_is_clean() -> None:
    violations = run(
        {
            "src/repro/engine/worker.py": """
            from repro.engine.types import JobResult

            def run_job(detector, frame) -> JobResult:
                try:
                    boxes = detector.detect(frame)
                except Exception as exc:
                    return JobResult(status="failed", boxes=None)
                return JobResult(status="ok", boxes=boxes)
            """,
            "src/repro/engine/types.py": """
            class JobResult:
                def __init__(self, status, boxes=None):
                    self.status = status
                    self.boxes = boxes
            """,
        },
        select={"RPR008"},
    )
    assert violations == []


def test_rpr008_suppression_with_justification_works() -> None:
    violations = run(
        {
            "src/repro/runner/exec.py": """
            from repro.engine.backends import make_backend

            def drive(jobs):
                # repro-lint: disable=RPR008 -- process-lifetime backend, reaped at exit
                backend = make_backend("thread")
                return [backend.run(j) for j in jobs]
            """,
        },
        select={"RPR008"},
    )
    assert violations == []


# ---------------------------------------------------------------------------
# RPR009 — import layering


def test_rpr009_upward_import_fires() -> None:
    violations = run(
        {
            "src/repro/engine/pipe.py": """
            from repro.core.mes import choose

            def go():
                return choose()
            """,
            "src/repro/core/mes.py": "def choose():\n    return 1\n",
        },
        select={"RPR009"},
    )
    assert [v.rule_id for v in violations] == ["RPR009"]
    violation = violations[0]
    assert violation.path == "src/repro/engine/pipe.py"
    assert "layer 'engine' must not import layer 'core'" in violation.message


def test_rpr009_type_checking_import_is_exempt() -> None:
    violations = run(
        {
            "src/repro/engine/pipe.py": """
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from repro.core.mes import MES

            def go(mes: "MES"):
                return mes
            """,
            "src/repro/core/mes.py": "class MES:\n    pass\n",
        },
        select={"RPR009"},
    )
    assert violations == []


def test_rpr009_function_level_import_still_enforced() -> None:
    violations = run(
        {
            "src/repro/engine/pipe.py": """
            def go():
                from repro.core.mes import choose
                return choose()
            """,
            "src/repro/core/mes.py": "def choose():\n    return 1\n",
        },
        select={"RPR009"},
    )
    assert [v.rule_id for v in violations] == ["RPR009"]


def test_rpr009_transitive_closure_admits_indirect_layers() -> None:
    # cli may import runner, runner may import core: the closure lets
    # cli import core directly too.
    violations = run(
        {
            "src/repro/cli.py": """
            from repro.core.mes import choose

            def main():
                return choose()
            """,
            "src/repro/core/mes.py": "def choose():\n    return 1\n",
        },
        select={"RPR009"},
    )
    assert violations == []


def test_rpr009_undeclared_layer_is_flagged() -> None:
    config = LintConfig(layers={"utils": ()})
    violations = run(
        {
            "src/repro/mystery/new.py": "X = 1\n",
        },
        select={"RPR009"},
        config=config,
    )
    assert [v.rule_id for v in violations] == ["RPR009"]
    assert "not declared" in violations[0].message
    assert violations[0].line == 1


def test_rpr009_custom_dag_overrides_default() -> None:
    # The shipped default allows core -> engine; a stricter custom DAG
    # can forbid it.
    sources = {
        "src/repro/core/exec.py": """
        from repro.engine.store import Store

        def go():
            return Store()
        """,
        "src/repro/engine/store.py": "class Store:\n    pass\n",
    }
    assert run(sources, select={"RPR009"}) == []
    strict = LintConfig(layers={"core": (), "engine": ()})
    violations = run(sources, select={"RPR009"}, config=strict)
    assert [v.rule_id for v in violations] == ["RPR009"]
    assert "allowed: nothing" in violations[0].message


# ---------------------------------------------------------------------------
# RPR010 — ordered sinks


def test_rpr010_set_into_json_dump_fires() -> None:
    violations = run(
        {
            "src/repro/query/writer.py": """
            import json

            def persist(items, out):
                keys = set(items)
                out.write(json.dumps(list(keys)))
            """,
        },
        select={"RPR010"},
    )
    assert [v.rule_id for v in violations] == ["RPR010"]
    message = violations[0].message
    assert "set()" in message
    assert "src/repro/query/writer.py:5" in message
    assert "sorted(" in message


def test_rpr010_sorted_normalization_stays_clean() -> None:
    assert (
        run(
            {
                "src/repro/query/writer.py": """
                import json

                def persist(items, out):
                    keys = sorted(set(items))
                    out.write(json.dumps(keys))
                """,
            },
            select={"RPR010"},
        )
        == []
    )


def test_rpr010_inplace_sort_stays_clean() -> None:
    assert (
        run(
            {
                "src/repro/query/writer.py": """
                import json

                def persist(items, out):
                    keys = list(set(items))
                    keys.sort()
                    out.write(json.dumps(keys))
                """,
            },
            select={"RPR010"},
        )
        == []
    )


def test_rpr010_insertion_ordered_dict_views_stay_clean() -> None:
    # Dicts are insertion-ordered: views over a deterministically built
    # dict are deterministic, so they must NOT taint (the FP guard).
    assert (
        run(
            {
                "src/repro/query/writer.py": """
                import json

                def persist(records, out):
                    table = {}
                    for record in records:
                        table[record.key] = record.value
                    out.write(json.dumps(list(table.items()), sort_keys=True))
                """,
            },
            select={"RPR010"},
        )
        == []
    )


def test_rpr010_views_over_unordered_dict_fire() -> None:
    violations = run(
        {
            "src/repro/query/writer.py": """
            import json

            def persist(items, out):
                table = dict.fromkeys(set(items))
                keys = list(table)
                out.write(json.dumps(sorted(items)))

            def persist_views(items, out):
                grouped = {}
                for item in set(items):
                    grouped[item] = 1
                out.write(json.dumps(list(grouped.keys())))
            """,
        },
        select={"RPR010"},
    )
    # Only the second function fires: its dict was *built* in set order.
    assert [v.rule_id for v in violations] == ["RPR010"]
    assert violations[0].line == 13


def test_rpr010_listdir_through_helper_and_return_fires() -> None:
    # Provenance survives a call hop and a return: the unsorted listdir
    # happens in one module, the JSON write in another.
    violations = run(
        {
            "src/repro/runner/scan.py": """
            import os

            def frame_files(root):
                return [name for name in os.listdir(root)]
            """,
            "src/repro/runner/manifest.py": """
            import json

            from repro.runner.scan import frame_files

            def write_manifest(root, out):
                files = frame_files(root)
                out.write(json.dumps(files))
            """,
        },
        select={"RPR010"},
    )
    assert [v.rule_id for v in violations] == ["RPR010"]
    message = violations[0].message
    assert "os.listdir()" in message
    assert "flow:" in message
    assert "returned by repro.runner.scan.frame_files" in message


def test_rpr010_store_put_key_fires() -> None:
    violations = run(
        {
            "src/repro/engine/keys.py": """
            def index(store, names):
                key = frozenset(names)
                store.put(tuple(key), 1)
            """,
        },
        select={"RPR010"},
    )
    assert [v.rule_id for v in violations] == ["RPR010"]
    assert "frozenset()" in violations[0].message


def test_rpr010_joined_key_fires_and_sorted_join_does_not() -> None:
    violations = run(
        {
            "src/repro/query/keys.py": """
            def bad_key(parts):
                return ":".join(set(parts))

            def good_key(parts):
                return ":".join(sorted(set(parts)))
            """,
        },
        select={"RPR010"},
    )
    assert [v.rule_id for v in violations] == ["RPR010"]
    assert violations[0].line == 3


def test_rpr010_outside_repro_namespace_is_exempt() -> None:
    # Sinks in tests/benchmarks are not part of the persisted contract.
    assert (
        run(
            {
                "tests/helpers.py": """
                import json

                def dump(items, out):
                    out.write(json.dumps(list(set(items))))
                """,
            },
            select={"RPR010"},
        )
        == []
    )


# ---------------------------------------------------------------------------
# RPR011 — unstable serialization in persistence modules


def test_rpr011_json_dumps_without_sort_keys_fires() -> None:
    violations = run(
        {
            "src/repro/query/matstore.py": """
            import json

            def save(record, fh):
                fh.write(json.dumps(record))
            """,
        },
        select={"RPR011"},
    )
    assert [v.rule_id for v in violations] == ["RPR011"]
    assert "sort_keys=True" in violations[0].message


def test_rpr011_sorted_keys_and_nonpersistence_modules_clean() -> None:
    # sort_keys=True passes; the same code outside a persistence module
    # is out of scope.
    assert (
        run(
            {
                "src/repro/query/matstore.py": """
                import json

                def save(record, fh):
                    fh.write(json.dumps(record, sort_keys=True))
                """,
                "src/repro/cli.py": """
                import json

                def show(record):
                    print(json.dumps(record))
                """,
            },
            select={"RPR011"},
        )
        == []
    )


def test_rpr011_sort_keys_false_fires() -> None:
    violations = run(
        {
            "src/repro/query/matstore.py": """
            import json

            def save(record, fh):
                fh.write(json.dumps(record, sort_keys=False))
            """,
        },
        select={"RPR011"},
    )
    assert [v.rule_id for v in violations] == ["RPR011"]


def test_rpr011_id_hash_and_repr_keys_fire() -> None:
    violations = run(
        {
            "src/repro/query/matstore.py": """
            def key_for(obj):
                return id(obj)

            def slot_for(table, obj):
                return table[hash(obj)]

            def put(store, obj, value):
                store.put(repr(obj), value)
            """,
        },
        select={"RPR011"},
    )
    assert [v.rule_id for v in violations] == ["RPR011"] * 3
    messages = " | ".join(v.message for v in violations)
    assert "id()" in messages
    assert "hash()" in messages
    assert "repr()-derived key" in messages


def test_rpr011_diagnostic_repr_is_clean() -> None:
    # repr() for error messages / __repr__ is fine — only key positions
    # are flagged.
    assert (
        run(
            {
                "src/repro/query/matstore.py": """
                def describe(obj):
                    return f"unusable record {repr(obj)}"
                """,
            },
            select={"RPR011"},
        )
        == []
    )


def test_rpr011_custom_persistence_config() -> None:
    sources = {
        "src/repro/query/custom_sink.py": """
        import json

        def save(record, fh):
            fh.write(json.dumps(record))
        """,
    }
    # Not matched by the default fragments...
    assert run(sources, select={"RPR011"}) == []
    # ... but a configured fragment pulls it into scope.
    config = LintConfig(persistence=("custom_sink",))
    violations = run(sources, select={"RPR011"}, config=config)
    assert [v.rule_id for v in violations] == ["RPR011"]


# ---------------------------------------------------------------------------
# RPR012 — parallel-reduction order


def test_rpr012_as_completed_accumulation_fires_with_chain() -> None:
    violations = run(
        {
            "src/repro/engine/agg.py": """
            from concurrent.futures import as_completed

            def reduce_results(futures):
                total = 0.0
                for fut in as_completed(futures):
                    total += fut.result()
                return total
            """,
        },
        select={"RPR012"},
    )
    assert [v.rule_id for v in violations] == ["RPR012"]
    message = violations[0].message
    assert "'total'" in message
    assert "as_completed() (completion order)" in message
    # RPR007-style chain evidence.
    assert "flow:" in message
    assert "not associative" in message


def test_rpr012_as_completed_then_sort_is_clean() -> None:
    # The sanctioned pattern: drain completion order into a list, sort
    # by a stable key, then fold.
    assert (
        run(
            {
                "src/repro/engine/agg.py": """
                from concurrent.futures import as_completed

                def reduce_results(futures):
                    done = [(f.key, f.result()) for f in as_completed(futures)]
                    done.sort()
                    total = 0.0
                    for _, value in done:
                        total += value
                    return total
                """,
            },
            select={"RPR012"},
        )
        == []
    )


def test_rpr012_counters_are_exempt() -> None:
    # Constant increments are order-independent: counting elements of a
    # set is deterministic no matter the iteration order.
    assert (
        run(
            {
                "src/repro/engine/agg.py": """
                def count(items):
                    n = 0
                    for _ in set(items):
                        n += 1
                    return n
                """,
            },
            select={"RPR012"},
        )
        == []
    )


def test_rpr012_snapshot_merge_over_set_fires() -> None:
    violations = run(
        {
            "src/repro/obs/agg.py": """
            def combine(snapshots_by_name):
                merged = None
                for name in set(snapshots_by_name):
                    merged = merged.merge(snapshots_by_name[name])
                return merged
            """,
        },
        select={"RPR012"},
    )
    assert [v.rule_id for v in violations] == ["RPR012"]
    assert ".merge()" in violations[0].message


def test_rpr012_sorted_merge_is_clean() -> None:
    assert (
        run(
            {
                "src/repro/obs/agg.py": """
                def combine(snapshots_by_name):
                    merged = None
                    for name in sorted(snapshots_by_name):
                        merged = merged.merge(snapshots_by_name[name])
                    return merged
                """,
            },
            select={"RPR012"},
        )
        == []
    )


# ---------------------------------------------------------------------------
# RPR013 — process-transport safety


def test_rpr013_lambda_capturing_lock_fires_with_capture_chain() -> None:
    violations = run(
        {
            "src/repro/runner/dispatch.py": """
            import threading

            from concurrent.futures import ProcessPoolExecutor

            def run_one(job, lock):
                with lock:
                    return job

            def drive(jobs):
                lock = threading.Lock()
                pool = ProcessPoolExecutor()
                return list(pool.map(lambda job: run_one(job, lock), jobs))
            """,
        },
        select={"RPR013"},
    )
    assert [v.rule_id for v in violations] == ["RPR013"]
    message = violations[0].message
    assert "lambda" in message
    assert "cannot be imported by worker processes" in message
    # The capture chain names the free variable and what binds it.
    assert "capture chain" in message
    assert "'lock' (lock)" in message
    assert "repro.runner.dispatch.drive" in message


def test_rpr013_local_def_fires_top_level_def_is_clean() -> None:
    violations = run(
        {
            "src/repro/runner/dispatch.py": """
            from concurrent.futures import ProcessPoolExecutor

            def execute(job):
                return job * 2

            def drive(jobs):
                def helper(job):
                    return execute(job)
                pool = ProcessPoolExecutor()
                return list(pool.map(helper, jobs))

            def drive_safe(jobs):
                pool = ProcessPoolExecutor()
                return list(pool.map(execute, jobs))
            """,
        },
        select={"RPR013"},
    )
    # Only the local def fires; the module-level function is picklable.
    assert [v.rule_id for v in violations] == ["RPR013"]
    assert "local def" in violations[0].message
    assert "helper" in violations[0].message


def test_rpr013_thread_pool_is_exempt() -> None:
    assert (
        run(
            {
                "src/repro/runner/dispatch.py": """
                import threading

                from concurrent.futures import ThreadPoolExecutor

                def drive(jobs):
                    lock = threading.Lock()
                    pool = ThreadPoolExecutor()
                    return list(pool.map(lambda job: (job, lock), jobs))
                """,
            },
            select={"RPR013"},
        )
        == []
    )


def test_rpr013_bound_method_dragging_lock_fires() -> None:
    violations = run(
        {
            "src/repro/runner/dispatch.py": """
            import threading

            from concurrent.futures import ProcessPoolExecutor

            class Runner:
                def __init__(self):
                    self._lock = threading.Lock()

                def work(self, job):
                    return job

                def drive(self, jobs):
                    pool = ProcessPoolExecutor()
                    return list(pool.map(self.work, jobs))
            """,
        },
        select={"RPR013"},
    )
    assert [v.rule_id for v in violations] == ["RPR013"]
    message = violations[0].message
    assert "bound method" in message
    assert "self._lock (lock)" in message
    assert "process boundary" in message


def test_rpr013_module_mutation_fires_with_chain() -> None:
    violations = run(
        {
            "src/repro/runner/dispatch.py": """
            from concurrent.futures import ProcessPoolExecutor

            _RESULTS = {}

            def execute(job):
                _RESULTS[job] = job * 2
                return job

            def drive(jobs):
                pool = ProcessPoolExecutor()
                return list(pool.map(execute, jobs))
            """,
        },
        select={"RPR013"},
    )
    assert [v.rule_id for v in violations] == ["RPR013"]
    message = violations[0].message
    assert "mutates module state" in message
    assert "_RESULTS" in message
    assert "silently lost" in message
    assert "chain:" in message


# ---------------------------------------------------------------------------
# RPR014 — cache purity


def test_rpr014_clock_value_reaching_put_fires_with_flow() -> None:
    violations = run(
        {
            "src/repro/engine/persist.py": """
            import time

            def persist(store, stage, key):
                value = time.time()
                store.put(stage, key, value)
            """,
        },
        select={"RPR014"},
    )
    assert [v.rule_id for v in violations] == ["RPR014"]
    message = violations[0].message
    assert "not a pure function of its parameters" in message
    assert "time.time" in message
    assert "flow:" in message
    assert "derive_rng" in message  # the suggested fix mentions the seams


def test_rpr014_cross_module_laundering_fires() -> None:
    violations = run(
        {
            "src/repro/engine/clockutil.py": """
            import time

            def stamp():
                return time.time()
            """,
            "src/repro/engine/persist.py": """
            from repro.engine.clockutil import stamp

            def persist(store, stage, key):
                value = stamp()
                store.put(stage, key, value)
            """,
        },
        select={"RPR014"},
    )
    assert [v.rule_id for v in violations] == ["RPR014"]
    message = violations[0].message
    # The flow chain crosses the module boundary back to the clock read.
    assert "time.time" in message
    assert "clockutil" in message


def test_rpr014_derive_rng_seam_is_clean() -> None:
    assert (
        run(
            {
                "src/repro/utils/rng.py": """
                def derive_rng(seed, *key):
                    return object()
                """,
                "src/repro/engine/persist.py": """
                from repro.utils.rng import derive_rng

                def persist(store, stage, key, seed):
                    rng = derive_rng(seed, stage)
                    store.put(stage, key, rng)
                """,
            },
            select={"RPR014"},
        )
        == []
    )


def test_rpr014_timing_keyword_is_exempt() -> None:
    assert (
        run(
            {
                "src/repro/engine/persist.py": """
                import time

                def persist(store, stage, key, value):
                    started = time.perf_counter()
                    wall = (time.perf_counter() - started) * 1000.0
                    store.put(stage, key, value, compute_ms=wall)
                """,
            },
            select={"RPR014"},
        )
        == []
    )


def test_rpr014_parameter_derived_value_is_clean() -> None:
    assert (
        run(
            {
                "src/repro/engine/persist.py": """
                def persist(store, stage, key, boxes):
                    value = [b for b in boxes if b is not None]
                    store.put(stage, key, value)
                """,
            },
            select={"RPR014"},
        )
        == []
    )


# ---------------------------------------------------------------------------
# RPR015 — unbounded growth on the hot path


def test_rpr015_lexical_loop_growth_fires() -> None:
    violations = run(
        {
            "src/repro/tracking/events.py": """
            class EventLog:
                def __init__(self):
                    self._events = []

                def on_batch(self, frames):
                    for frame in frames:
                        self._events.append(frame)
            """,
        },
        select={"RPR015"},
    )
    assert [v.rule_id for v in violations] == ["RPR015"]
    message = violations[0].message
    assert "EventLog._events" in message
    assert "grows via .append()" in message
    assert "inside a loop" in message
    assert "no bounding operation" in message


def test_rpr015_cross_module_growth_chain_fires() -> None:
    violations = run(
        {
            "src/repro/tracking/tracker.py": """
            class TrackBook:
                def __init__(self):
                    self._tracks = []

                def admit(self, track):
                    self._tracks.append(track)
            """,
            "src/repro/engine/loop.py": """
            from repro.tracking.tracker import TrackBook

            def serve(frames):
                book = TrackBook()
                for frame in frames:
                    book.admit(frame)
                return book
            """,
        },
        select={"RPR015"},
    )
    assert [v.rule_id for v in violations] == ["RPR015"]
    message = violations[0].message
    # The evidence names the cross-module caller chain into the loop.
    assert "reached from a loop" in message
    assert "repro.engine.loop.serve" in message
    assert "src/repro/engine/loop.py" in message


def test_rpr015_bounded_deque_is_clean() -> None:
    assert (
        run(
            {
                "src/repro/tracking/events.py": """
                from collections import deque

                class EventLog:
                    def __init__(self):
                        self._events = deque(maxlen=256)

                    def on_batch(self, frames):
                        for frame in frames:
                            self._events.append(frame)
                """,
            },
            select={"RPR015"},
        )
        == []
    )


def test_rpr015_eviction_anywhere_bounds_the_container() -> None:
    assert (
        run(
            {
                "src/repro/engine/cachebox.py": """
                class CacheBox:
                    def __init__(self):
                        self._entries = {}

                    def remember(self, keys):
                        for key in keys:
                            self._entries[key] = key

                    def evict_oldest(self):
                        while len(self._entries) > 100:
                            self._entries.pop(next(iter(self._entries)))
                """,
            },
            select={"RPR015"},
        )
        == []
    )


def test_rpr015_reassignment_outside_init_retires_contents() -> None:
    assert (
        run(
            {
                "src/repro/runner/batcher.py": """
                class Batcher:
                    def __init__(self):
                        self._batch = []

                    def feed(self, items):
                        for item in items:
                            self._batch.append(item)

                    def flush(self):
                        out = list(self._batch)
                        self._batch = []
                        return out
                """,
            },
            select={"RPR015"},
        )
        == []
    )


def test_rpr015_keyed_upsert_is_not_growth() -> None:
    assert (
        run(
            {
                "src/repro/obs/registry.py": """
                class Registry:
                    def __init__(self):
                        self._by_name = {}

                    def record(self, names):
                        for name in names:
                            if name not in self._by_name:
                                self._by_name[name] = 0
                """,
            },
            select={"RPR015"},
        )
        == []
    )


def test_rpr015_test_module_loops_are_not_hot_paths() -> None:
    assert (
        run(
            {
                "src/repro/tracking/tracker.py": """
                class TrackBook:
                    def __init__(self):
                        self._tracks = []

                    def admit(self, track):
                        self._tracks.append(track)
                """,
                "tests/test_tracker.py": """
                from repro.tracking.tracker import TrackBook

                def test_admit():
                    book = TrackBook()
                    for i in range(3):
                        book.admit(i)
                """,
            },
            select={"RPR015"},
        )
        == []
    )
