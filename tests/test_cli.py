"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.command == "compare"
        assert args.dataset == "nusc-night"
        assert args.m == 5

    def test_compare_options(self):
        args = build_parser().parse_args(
            [
                "compare",
                "--dataset",
                "bdd",
                "--frames",
                "100",
                "--trials",
                "1",
                "--m",
                "3",
                "--w1",
                "0.7",
            ]
        )
        assert args.dataset == "bdd"
        assert args.frames == 100
        assert args.w1 == 0.7

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--dataset", "kitti"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fault_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.fault_profile == "none"
        assert args.fault_seed is None
        assert args.retries == 3
        assert args.timeout_ms is None

    def test_fault_options(self):
        args = build_parser().parse_args(
            [
                "compare",
                "--fault-profile",
                "outage-first",
                "--fault-seed",
                "9",
                "--retries",
                "2",
                "--timeout-ms",
                "500",
            ]
        )
        assert args.fault_profile == "outage-first"
        assert args.fault_seed == 9
        assert args.retries == 2
        assert args.timeout_ms == 500.0

    def test_unknown_fault_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["compare", "--fault-profile", "meltdown"]
            )


class TestWorkersValidation:
    """``--workers`` is validated at parse time (never deep in a pool)."""

    def test_workers_with_serial_backend_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["compare", "--backend", "serial", "--workers", "8"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--workers requires --backend thread or process" in err

    def test_workers_default_serial_accepted(self):
        # No explicit --workers: serial is fine (the default backend).
        args = build_parser().parse_args(["compare"])
        assert args.backend == "serial"
        assert args.workers is None

    def test_workers_zero_rejected_at_parse_time(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                ["compare", "--backend", "thread", "--workers", "0"]
            )
        assert excinfo.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_workers_negative_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["compare", "--backend", "thread", "--workers=-2"]
            )
        assert "positive integer" in capsys.readouterr().err

    def test_workers_non_integer_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["compare", "--backend", "thread", "--workers", "many"]
            )
        assert "expected an integer" in capsys.readouterr().err

    def test_workers_defaulted_for_thread_backend(self, capsys):
        code = main(
            [
                "compare",
                "--dataset",
                "nusc-clear",
                "--frames",
                "10",
                "--trials",
                "1",
                "--m",
                "2",
                "--scale",
                "0.02",
                "--backend",
                "thread",
            ]
        )
        assert code == 0
        assert "MES" in capsys.readouterr().out

    def test_workers_applies_to_query_too(self, capsys):
        with pytest.raises(SystemExit):
            main(
                ["query", "--backend", "serial", "--workers", "2", "SELECT x"]
            )
        err = capsys.readouterr().err
        assert "--workers requires --backend thread or process" in err


class TestObservabilityFlags:
    def test_obs_defaults_off(self):
        args = build_parser().parse_args(["compare"])
        assert args.obs_level == "off"
        assert args.metrics_out is None
        assert args.trace_out is None
        assert args.events_out is None

    def test_trace_out_requires_trace_level(self, capsys):
        with pytest.raises(SystemExit):
            main(["compare", "--trace-out", "t.json"])
        assert "--trace-out requires --obs-level trace" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            main(["compare", "--obs-level", "metrics", "--trace-out", "t.json"])

    def test_metrics_out_requires_metrics_level(self, capsys):
        with pytest.raises(SystemExit):
            main(["compare", "--metrics-out", "m.prom"])
        err = capsys.readouterr().err
        assert "--metrics-out requires --obs-level" in err

    def test_events_out_requires_metrics_level(self, capsys):
        with pytest.raises(SystemExit):
            main(["query", "--events-out", "e.jsonl", "SELECT x"])
        assert "--events-out requires --obs-level" in capsys.readouterr().err

    def test_unknown_obs_level_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--obs-level", "debug"])

    def test_compare_writes_obs_outputs(self, capsys, tmp_path):
        import json

        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.json"
        events_path = tmp_path / "events.jsonl"
        code = main(
            [
                "compare",
                "--dataset",
                "nusc-clear",
                "--frames",
                "10",
                "--trials",
                "1",
                "--m",
                "2",
                "--scale",
                "0.02",
                "--obs-level",
                "trace",
                "--metrics-out",
                str(metrics_path),
                "--trace-out",
                str(trace_path),
                "--events-out",
                str(events_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"metrics written to {metrics_path}" in out

        metrics = json.loads(metrics_path.read_text())
        frame_counters = [
            c
            for c in metrics["counters"]
            if c["name"] == "repro_frames_total"
        ]
        # One series per algorithm, 10 frames each.
        assert frame_counters
        assert all(c["value"] == 10 for c in frame_counters)

        trace = json.loads(trace_path.read_text())
        span_names = {s["name"] for s in trace["spans"]}
        assert {"trial", "frame", "select", "detect", "fuse", "score",
                "update"} <= span_names

        events = [
            json.loads(line)
            for line in events_path.read_text().splitlines()
        ]
        assert events
        assert all(e["type"] == "frame-completed" for e in events)

    def test_compare_prometheus_metrics_out(self, capsys, tmp_path):
        metrics_path = tmp_path / "metrics.prom"
        code = main(
            [
                "compare",
                "--dataset",
                "nusc-clear",
                "--frames",
                "8",
                "--trials",
                "1",
                "--m",
                "2",
                "--scale",
                "0.02",
                "--obs-level",
                "metrics",
                "--metrics-out",
                str(metrics_path),
            ]
        )
        assert code == 0
        text = metrics_path.read_text()
        assert "# TYPE repro_frames_total counter" in text
        assert "repro_trials_total 1" in text


class TestCommands:
    def test_algorithms_lists_registry(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        for name in ("mes", "sw-mes", "opt"):
            assert name in out

    def test_compare_runs_small(self, capsys, tmp_path):
        csv_path = tmp_path / "out.csv"
        code = main(
            [
                "compare",
                "--dataset",
                "nusc-clear",
                "--frames",
                "25",
                "--trials",
                "1",
                "--m",
                "2",
                "--scale",
                "0.02",
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MES" in out and "OPT" in out
        assert csv_path.exists()
        assert "algorithm,trial" in csv_path.read_text()

    def test_compare_with_fault_profile(self, capsys):
        code = main(
            [
                "compare",
                "--dataset",
                "nusc-clear",
                "--frames",
                "20",
                "--trials",
                "1",
                "--m",
                "2",
                "--scale",
                "0.02",
                "--fault-profile",
                "flaky-first",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MES" in out
        assert "fault stats:" in out

    def test_process_backend_rejected_with_faults(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "compare",
                    "--dataset",
                    "nusc-clear",
                    "--frames",
                    "10",
                    "--m",
                    "2",
                    "--backend",
                    "process",
                    "--fault-profile",
                    "chaos",
                ]
            )

    def test_query_runs_small(self, capsys):
        code = main(
            [
                "query",
                "--dataset",
                "nusc-clear",
                "--frames",
                "20",
                "--m",
                "2",
                "--scale",
                "0.02",
                "SELECT frameID FROM (PROCESS video PRODUCE frameID, "
                "Detections USING BF(yolov7-tiny-clear)) WHERE frameID < 5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "frame ids: [0, 1, 2, 3, 4]" in out


class TestQueryCliEndToEnd:
    QUERY = (
        "SELECT frameID FROM (PROCESS video PRODUCE frameID, Detections "
        "USING BF(yolov7-tiny-clear, yolov7-tiny-night)) WHERE frameID < 8"
    )
    SMALL = ["--dataset", "nusc-clear", "--frames", "20", "--m", "2",
             "--scale", "0.02"]

    def _run(self, capsys, *extra):
        code = main(["query", *self.SMALL, *extra, self.QUERY])
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_serial_and_thread_backends_agree(self, capsys):
        code_serial, out_serial, _ = self._run(capsys, "--backend", "serial")
        code_thread, out_thread, _ = self._run(
            capsys, "--backend", "thread", "--workers", "2"
        )
        assert code_serial == code_thread == 0
        serial_ids = next(
            line for line in out_serial.splitlines()
            if line.startswith("frame ids:")
        )
        thread_ids = next(
            line for line in out_thread.splitlines()
            if line.startswith("frame ids:")
        )
        assert serial_ids == thread_ids
        assert serial_ids == f"frame ids: {list(range(8))}"

    def test_explain_flag_prints_plans_without_running(self, capsys):
        code, out, _ = self._run(capsys, "--explain")
        assert code == 0
        assert "logical plan:" in out
        assert "physical plan:" in out
        assert "predicate pushdown" in out
        assert "projection pruning" in out
        assert "frame ids:" not in out  # nothing executed

    def test_explain_prefix_equivalent_to_flag(self, capsys):
        code = main(["query", *self.SMALL, f"EXPLAIN {self.QUERY}"])
        prefixed = capsys.readouterr().out
        _, flagged, _ = self._run(capsys, "--explain")
        assert code == 0
        assert prefixed == flagged

    def test_parse_error_prints_caret_and_exits_2(self, capsys):
        text = "SELECT frameID FORM (PROCESS v PRODUCE frameID USING BF(m))"
        code = main(["query", *self.SMALL, text])
        captured = capsys.readouterr()
        assert code == 2
        lines = captured.err.splitlines()
        assert lines[0].startswith("error: ")
        assert lines[1] == f"  {text}"
        assert lines[2].index("^") - 2 == text.index("FORM")

    def test_materialize_dir_warm_run_reuses_everything(self, capsys, tmp_path):
        mat = ["--materialize-dir", str(tmp_path / "mat")]
        code_cold, out_cold, _ = self._run(capsys, *mat)
        code_warm, out_warm, _ = self._run(capsys, *mat)
        assert code_cold == code_warm == 0
        cold_stats = next(
            line for line in out_cold.splitlines()
            if line.startswith("materialized store:")
        )
        warm_stats = next(
            line for line in out_warm.splitlines()
            if line.startswith("materialized store:")
        )
        assert "hit rate 0.00" in cold_stats
        assert "0 new" in warm_stats  # every value came from the store
        assert "hit rate 1.00" in warm_stats
        # Bit-identical result rows, cold or warm.
        frame_lines = [
            next(line for line in out.splitlines()
                 if line.startswith("frame ids:"))
            for out in (out_cold, out_warm)
        ]
        assert frame_lines[0] == frame_lines[1]
