"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.command == "compare"
        assert args.dataset == "nusc-night"
        assert args.m == 5

    def test_compare_options(self):
        args = build_parser().parse_args(
            [
                "compare",
                "--dataset",
                "bdd",
                "--frames",
                "100",
                "--trials",
                "1",
                "--m",
                "3",
                "--w1",
                "0.7",
            ]
        )
        assert args.dataset == "bdd"
        assert args.frames == 100
        assert args.w1 == 0.7

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--dataset", "kitti"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fault_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.fault_profile == "none"
        assert args.fault_seed is None
        assert args.retries == 3
        assert args.timeout_ms is None

    def test_fault_options(self):
        args = build_parser().parse_args(
            [
                "compare",
                "--fault-profile",
                "outage-first",
                "--fault-seed",
                "9",
                "--retries",
                "2",
                "--timeout-ms",
                "500",
            ]
        )
        assert args.fault_profile == "outage-first"
        assert args.fault_seed == 9
        assert args.retries == 2
        assert args.timeout_ms == 500.0

    def test_unknown_fault_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["compare", "--fault-profile", "meltdown"]
            )


class TestCommands:
    def test_algorithms_lists_registry(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        for name in ("mes", "sw-mes", "opt"):
            assert name in out

    def test_compare_runs_small(self, capsys, tmp_path):
        csv_path = tmp_path / "out.csv"
        code = main(
            [
                "compare",
                "--dataset",
                "nusc-clear",
                "--frames",
                "25",
                "--trials",
                "1",
                "--m",
                "2",
                "--scale",
                "0.02",
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MES" in out and "OPT" in out
        assert csv_path.exists()
        assert "algorithm,trial" in csv_path.read_text()

    def test_compare_with_fault_profile(self, capsys):
        code = main(
            [
                "compare",
                "--dataset",
                "nusc-clear",
                "--frames",
                "20",
                "--trials",
                "1",
                "--m",
                "2",
                "--scale",
                "0.02",
                "--fault-profile",
                "flaky-first",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MES" in out
        assert "fault stats:" in out

    def test_process_backend_rejected_with_faults(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "compare",
                    "--dataset",
                    "nusc-clear",
                    "--frames",
                    "10",
                    "--m",
                    "2",
                    "--backend",
                    "process",
                    "--fault-profile",
                    "chaos",
                ]
            )

    def test_query_runs_small(self, capsys):
        code = main(
            [
                "query",
                "--dataset",
                "nusc-clear",
                "--frames",
                "20",
                "--m",
                "2",
                "--scale",
                "0.02",
                "SELECT frameID FROM (PROCESS video PRODUCE frameID, "
                "Detections USING BF(yolov7-tiny-clear)) WHERE frameID < 5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "frame ids: [0, 1, 2, 3, 4]" in out
