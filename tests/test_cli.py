"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.command == "compare"
        assert args.dataset == "nusc-night"
        assert args.m == 5

    def test_compare_options(self):
        args = build_parser().parse_args(
            [
                "compare",
                "--dataset",
                "bdd",
                "--frames",
                "100",
                "--trials",
                "1",
                "--m",
                "3",
                "--w1",
                "0.7",
            ]
        )
        assert args.dataset == "bdd"
        assert args.frames == 100
        assert args.w1 == 0.7

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--dataset", "kitti"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_algorithms_lists_registry(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        for name in ("mes", "sw-mes", "opt"):
            assert name in out

    def test_compare_runs_small(self, capsys, tmp_path):
        csv_path = tmp_path / "out.csv"
        code = main(
            [
                "compare",
                "--dataset",
                "nusc-clear",
                "--frames",
                "25",
                "--trials",
                "1",
                "--m",
                "2",
                "--scale",
                "0.02",
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MES" in out and "OPT" in out
        assert csv_path.exists()
        assert "algorithm,trial" in csv_path.read_text()

    def test_query_runs_small(self, capsys):
        code = main(
            [
                "query",
                "--dataset",
                "nusc-clear",
                "--frames",
                "20",
                "--m",
                "2",
                "--scale",
                "0.02",
                "SELECT frameID FROM (PROCESS video PRODUCE frameID, "
                "Detections USING BF(yolov7-tiny-clear)) WHERE frameID < 5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "frame ids: [0, 1, 2, 3, 4]" in out
