"""Unit tests for the fusion base class helpers."""


from repro.detection.boxes import BBox
from repro.detection.types import Detection
from repro.ensembling.base import cluster_by_iou
from repro.ensembling.wbf import WeightedBoxesFusion


def det(x1, y1, x2, y2, conf, label="car", source="m1"):
    return Detection(BBox(x1, y1, x2, y2), conf, label, source=source)


class TestClusterByIoU:
    def test_overlapping_boxes_cluster(self):
        dets = [det(0, 0, 10, 10, 0.9), det(1, 0, 11, 10, 0.7)]
        clusters = cluster_by_iou(dets, 0.5)
        assert len(clusters) == 1
        assert clusters[0] == [0, 1]

    def test_disjoint_boxes_separate(self):
        dets = [det(0, 0, 10, 10, 0.9), det(100, 100, 110, 110, 0.7)]
        clusters = cluster_by_iou(dets, 0.5)
        assert len(clusters) == 2

    def test_clusters_ordered_by_confidence(self):
        dets = [
            det(0, 0, 10, 10, 0.3),
            det(0, 0, 10, 10, 0.9),
            det(0, 0, 10, 10, 0.6),
        ]
        clusters = cluster_by_iou(dets, 0.5)
        assert clusters == [[1, 2, 0]]

    def test_representative_is_first_member(self):
        """Membership is tested against the cluster's highest-confidence box."""
        # Chain: a-b overlap, b-c overlap, but a-c do not.  c joins only if
        # it overlaps the representative (a), so it starts a new cluster.
        a = det(0, 0, 10, 10, 0.9)
        b = det(4, 0, 14, 10, 0.8)
        c = det(9, 0, 19, 10, 0.7)
        clusters = cluster_by_iou([a, b, c], 0.4)
        assert len(clusters) == 2
        assert clusters[0][0] == 0

    def test_empty(self):
        assert cluster_by_iou([], 0.5) == []

    def test_indices_partition_input(self):
        dets = [det(10 * i, 0, 10 * i + 8, 8, 0.5 + 0.04 * i) for i in range(8)]
        clusters = cluster_by_iou(dets, 0.3)
        flat = sorted(i for cluster in clusters for i in cluster)
        assert flat == list(range(8))


class TestEnsembleMethodRepr:
    def test_repr_shows_parameters(self):
        text = repr(WeightedBoxesFusion(iou_threshold=0.6))
        assert "WeightedBoxesFusion" in text
        assert "iou_threshold=0.6" in text
