"""Unit tests for MES-B (Algorithm 2) and LRBP."""

import pytest

from repro.core.mes_b import LRBP, MESB


class TestMESB:
    def test_requires_budget(self, environment, small_video):
        with pytest.raises(ValueError, match="budget"):
            MESB().run(environment, small_video.frames)

    def test_stops_when_budget_exhausted(self, environment, small_video):
        result = MESB(gamma=2).run(environment, small_video.frames, budget_ms=150.0)
        assert result.frames_processed < len(small_video)
        # The while C <= B guard means the total may overshoot by at most
        # one iteration's cost.
        total = result.total_charged_ms
        last = result.records[-1].charged_ms
        assert total - last <= 150.0

    def test_larger_budget_processes_more_frames(self, environment, small_video):
        from repro.core.environment import DetectionEnvironment

        small = MESB(gamma=2).run(environment, small_video.frames, budget_ms=120.0)
        env2 = DetectionEnvironment(
            list(environment._detectors.values()),
            environment.reference,
            scoring=environment.scoring,
            cache=environment.cache,
        )
        big = MESB(gamma=2).run(env2, small_video.frames, budget_ms=600.0)
        assert big.frames_processed >= small.frames_processed

    def test_invalid_budget(self, environment, small_video):
        with pytest.raises(ValueError):
            MESB().run(environment, small_video.frames, budget_ms=0.0)


class TestLRBP:
    def test_fit_recovers_exact_line(self):
        points = [(t, 3.0 * t + 10.0) for t in range(1, 20)]
        model = LRBP.fit(points)
        assert model.slope == pytest.approx(3.0)
        assert model.intercept == pytest.approx(10.0)
        assert model.num_points == 19

    def test_fit_needs_two_points(self):
        with pytest.raises(ValueError):
            LRBP.fit([(1, 5.0)])

    def test_predict_cumulative(self):
        model = LRBP(slope=2.0, intercept=1.0, num_points=10)
        assert model.predict_cumulative(5) == pytest.approx(11.0)
        with pytest.raises(ValueError):
            model.predict_cumulative(-1)

    def test_predict_extra_budget(self):
        model = LRBP(slope=2.0, intercept=1.0, num_points=10)
        assert model.predict_extra_budget(100, 150) == pytest.approx(100.0)
        assert model.predict_extra_budget(100, 100) == 0.0
        with pytest.raises(ValueError):
            model.predict_extra_budget(100, 50)

    def test_negative_slope_clamped_to_zero_extra(self):
        model = LRBP(slope=-1.0, intercept=0.0, num_points=5)
        assert model.predict_extra_budget(10, 20) == 0.0

    def test_from_result_skips_initialization(self, environment, small_video):
        result = MESB(gamma=3).run(
            environment, small_video.frames, budget_ms=500.0
        )
        model = LRBP.from_result(
            result, skip_initialization=3, recent_fraction=1.0
        )
        assert model.num_points == result.frames_processed - 3
        assert model.slope > 0.0

    def test_from_result_recent_fraction(self, environment, small_video):
        result = MESB(gamma=3).run(
            environment, small_video.frames, budget_ms=500.0
        )
        model = LRBP.from_result(
            result, skip_initialization=3, recent_fraction=0.5
        )
        expected = max(int((result.frames_processed - 3) * 0.5), 2)
        assert model.num_points == expected
        with pytest.raises(ValueError):
            LRBP.from_result(result, recent_fraction=0.0)

    def test_end_to_end_prediction_accuracy(self, detector_pool, lidar, small_video):
        """LRBP predicts the remaining budget within a reasonable factor.

        Table 4 of the paper reports errors generally within 10%; on a
        30-frame toy video we accept a looser band (steady-state cost is
        noisier at this scale).
        """
        from repro.core.environment import DetectionEnvironment, EvaluationStore

        cache = EvaluationStore()
        env1 = DetectionEnvironment(detector_pool, lidar, cache=cache)
        partial = MESB(gamma=3).run(env1, small_video.frames, budget_ms=400.0)
        assert 0 < partial.frames_processed < len(small_video)
        model = LRBP.from_result(partial, skip_initialization=3)
        predicted = model.predict_extra_budget(
            partial.frames_processed, len(small_video)
        )

        env2 = DetectionEnvironment(detector_pool, lidar, cache=cache)
        full = MESB(gamma=3).run(env2, small_video.frames, budget_ms=1e9)
        actual = (
            full.total_charged_ms
            - sum(
                r.charged_ms
                for r in full.records[: partial.frames_processed]
            )
        )
        assert predicted == pytest.approx(actual, rel=0.5)
