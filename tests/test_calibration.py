"""Unit tests for black-box detector profiling.

The closing-the-loop property: profiling a SimulatedDetector must recover
the qualitative structure of the DetectorProfile it was built from.
"""

import pytest

from repro.simulation.calibration import estimate_profile, rank_by_recall
from repro.simulation.detectors import SimulatedDetector
from repro.simulation.profiles import make_profile
from repro.simulation.world import generate_video


@pytest.fixture(scope="module")
def clear_frames():
    return generate_video("cal/clear", 80, "clear", seed=31).frames


@pytest.fixture(scope="module")
def night_frames():
    return generate_video("cal/night", 80, "night", seed=32).frames


class TestEstimateProfile:
    def test_basic_fields(self, clear_frames):
        detector = SimulatedDetector(make_profile("yolov7-tiny", "clear"), seed=1)
        profile = estimate_profile(detector, clear_frames)
        assert profile.detector_name == "yolov7-tiny-clear"
        assert profile.frames_profiled == len(clear_frames)
        assert "clear" in profile.by_category
        stats = profile.by_category["clear"]
        assert 0.0 < stats.recall <= 1.0
        assert stats.mean_matched_iou > 0.5
        assert 0.0 < stats.label_accuracy <= 1.0

    def test_inference_time_matches_architecture(self, clear_frames):
        detector = SimulatedDetector(make_profile("yolov7-tiny", "clear"), seed=1)
        profile = estimate_profile(detector, clear_frames)
        assert profile.mean_inference_ms == pytest.approx(10.0, rel=0.15)

    def test_recovers_domain_specialization(self, clear_frames, night_frames):
        """The profiled recall gap mirrors the transfer matrix."""
        detector = SimulatedDetector(make_profile("yolov7-tiny", "clear"), seed=1)
        profile = estimate_profile(
            detector, list(clear_frames) + list(night_frames)
        )
        assert profile.recall_on("clear") > profile.recall_on("night")
        assert profile.best_category() == "clear"

    def test_night_specialist_best_at_night(self, clear_frames, night_frames):
        detector = SimulatedDetector(make_profile("yolov7-tiny", "night"), seed=1)
        profile = estimate_profile(
            detector, list(clear_frames) + list(night_frames)
        )
        assert profile.recall_on("night") > profile.recall_on("clear")

    def test_bigger_architecture_higher_recall(self, clear_frames):
        big = SimulatedDetector(make_profile("yolov7", "clear"), seed=1)
        small = SimulatedDetector(make_profile("yolov7-micro", "clear"), seed=1)
        big_profile = estimate_profile(big, clear_frames)
        small_profile = estimate_profile(small, clear_frames)
        assert big_profile.overall_recall() > small_profile.overall_recall()

    def test_unknown_category_recall_zero(self, clear_frames):
        detector = SimulatedDetector(make_profile("yolov7-tiny", "clear"), seed=1)
        profile = estimate_profile(detector, clear_frames)
        assert profile.recall_on("snow") == 0.0

    def test_empty_frames_rejected(self):
        detector = SimulatedDetector(make_profile("yolov7-tiny", "clear"), seed=1)
        with pytest.raises(ValueError):
            estimate_profile(detector, [])


class TestRankByRecall:
    def test_specialist_ranks_first_in_domain(self, night_frames):
        detectors = [
            SimulatedDetector(make_profile("yolov7-tiny", "clear"), seed=1),
            SimulatedDetector(make_profile("yolov7-tiny", "night"), seed=2),
            SimulatedDetector(make_profile("yolov7-tiny", "rainy"), seed=3),
        ]
        ranking = rank_by_recall(detectors, night_frames)
        assert ranking[0][0] == "yolov7-tiny-night"
        # Recalls are sorted descending.
        recalls = [value for _, value in ranking]
        assert recalls == sorted(recalls, reverse=True)
