"""Unit tests for the ensemble lattice."""

import pytest

from repro.core.ensembles import (
    enumerate_ensembles,
    is_subset,
    make_key,
    proper_subsets,
    subsets_inclusive,
)


class TestMakeKey:
    def test_canonical_sorted(self):
        assert make_key(["b", "a"]) == ("a", "b")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            make_key([])

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            make_key(["a", "a"])


class TestEnumerate:
    def test_counts_2_to_the_m_minus_1(self):
        for m in range(1, 6):
            names = [f"m{i}" for i in range(m)]
            assert len(enumerate_ensembles(names)) == 2**m - 1

    def test_order_by_size_then_lex(self):
        keys = enumerate_ensembles(["a", "b", "c"])
        assert keys == [
            ("a",),
            ("b",),
            ("c",),
            ("a", "b"),
            ("a", "c"),
            ("b", "c"),
            ("a", "b", "c"),
        ]

    def test_max_size_caps(self):
        keys = enumerate_ensembles(["a", "b", "c"], max_size=2)
        assert all(len(k) <= 2 for k in keys)
        assert len(keys) == 6

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            enumerate_ensembles(["a", "a"])

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            enumerate_ensembles([])


class TestSubsets:
    def test_proper_subsets(self):
        subsets = proper_subsets(("a", "b", "c"))
        assert ("a", "b", "c") not in subsets
        assert len(subsets) == 6

    def test_proper_subsets_of_singleton_empty(self):
        assert proper_subsets(("a",)) == []

    def test_subsets_inclusive(self):
        subsets = subsets_inclusive(("a", "b"))
        assert subsets == [("a",), ("b",), ("a", "b")]

    def test_is_subset(self):
        assert is_subset(("a",), ("a", "b"))
        assert is_subset(("a", "b"), ("a", "b"))
        assert not is_subset(("c",), ("a", "b"))
