"""Tests for the bounded, instrumented evaluation store."""

from __future__ import annotations

import threading

import pytest

from repro.core.environment import DetectionEnvironment
from repro.engine.store import CacheStats, DEFAULT_CAPACITY, EvaluationStore


class TestBasics:
    def test_default_capacity(self):
        store = EvaluationStore()
        assert store.capacity == DEFAULT_CAPACITY
        assert len(store) == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            EvaluationStore(capacity=0)
        with pytest.raises(ValueError):
            EvaluationStore(capacity=-5)

    def test_put_get_roundtrip(self):
        store = EvaluationStore(capacity=10)
        store.put("detector", ("f0", "m0"), "out")
        assert store.get("detector", ("f0", "m0")) == "out"
        assert len(store) == 1

    def test_none_values_rejected(self):
        store = EvaluationStore(capacity=10)
        with pytest.raises(ValueError):
            store.put("detector", "k", None)

    def test_negative_compute_ms_rejected(self):
        store = EvaluationStore(capacity=10)
        with pytest.raises(ValueError):
            store.put("detector", "k", "v", compute_ms=-1.0)

    def test_stages_are_namespaced(self):
        store = EvaluationStore(capacity=10)
        store.put("detector", "k", "a")
        store.put("reference", "k", "b")
        assert store.get("detector", "k") == "a"
        assert store.get("reference", "k") == "b"

    def test_contains_does_not_count_as_lookup(self):
        store = EvaluationStore(capacity=10)
        store.put("detector", "k", "v")
        assert store.contains("detector", "k")
        assert not store.contains("detector", "absent")
        assert store.stats().lookups == 0


class TestEviction:
    def test_capacity_is_enforced(self):
        store = EvaluationStore(capacity=3)
        for i in range(10):
            store.put("s", i, f"v{i}")
        assert len(store) == 3
        assert store.stats().evictions == 7

    def test_lru_order(self):
        store = EvaluationStore(capacity=2)
        store.put("s", "a", 1)
        store.put("s", "b", 2)
        # Touch "a" so "b" becomes least-recently-used.
        assert store.get("s", "a") == 1
        store.put("s", "c", 3)
        assert store.contains("s", "a")
        assert not store.contains("s", "b")
        assert store.contains("s", "c")

    def test_eviction_then_recompute_is_correct(self):
        """A miss after eviction recomputes the same deterministic value."""
        store = EvaluationStore(capacity=2)
        compute_count = {"n": 0}

        def make(i):
            def compute():
                compute_count["n"] += 1
                return i * i

            return compute

        for i in range(1, 6):
            assert store.get_or_compute("s", i, make(i)) == i * i
        assert compute_count["n"] == 5
        # 1..3 were evicted; recomputing yields identical values.
        assert store.get_or_compute("s", 1, make(1)) == 1
        assert compute_count["n"] == 6

    def test_evicted_environment_results_unchanged(
        self, detector_pool, lidar, small_video
    ):
        """A pathologically tiny store changes no evaluation result."""
        frames = small_video.frames[:6]

        def run(store):
            env = DetectionEnvironment(detector_pool, lidar, cache=store)
            scores = []
            for frame in frames:
                batch = env.evaluate(frame, env.all_ensembles, charge=True)
                scores.append(
                    {k: v.est_score for k, v in batch.evaluations.items()}
                )
            return scores, env.clock.snapshot()

        roomy_scores, roomy_clock = run(EvaluationStore())
        tiny_store = EvaluationStore(capacity=4)
        tiny_scores, tiny_clock = run(tiny_store)
        assert tiny_scores == roomy_scores
        assert tiny_clock == roomy_clock
        assert tiny_store.stats().evictions > 0
        assert len(tiny_store) <= 4


class TestStats:
    def test_hits_plus_misses_equals_lookups(self):
        store = EvaluationStore(capacity=8)
        for i in range(12):
            store.get_or_compute("s", i % 5, lambda: "v")
        stats = store.stats()
        assert stats.hits + stats.misses == stats.lookups
        for stage in stats.stages.values():
            assert stage.hits + stage.misses == stage.lookups

    def test_invariant_holds_after_environment_run(
        self, detector_pool, lidar, small_video
    ):
        store = EvaluationStore()
        env = DetectionEnvironment(detector_pool, lidar, cache=store)
        for frame in small_video.frames[:5]:
            env.evaluate(frame, env.all_ensembles, charge=True)
        stats = store.stats()
        assert isinstance(stats, CacheStats)
        assert stats.hits + stats.misses == stats.lookups
        assert stats.lookups > 0
        assert stats.hits > 0  # repeat evaluations reuse single outputs
        assert set(stats.stages) >= {"detector", "reference", "fused"}

    def test_per_stage_compute_timing(self):
        store = EvaluationStore(capacity=8)
        store.get_or_compute("slow", "k", lambda: sum(range(1000)))
        assert store.stats().stages["slow"].compute_ms >= 0.0

    def test_hit_rate(self):
        store = EvaluationStore(capacity=8)
        assert store.stats().hit_rate == 0.0
        store.put("s", "k", "v")
        store.get("s", "k")
        store.get("s", "k")
        store.get("s", "absent")
        stats = store.stats()
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_as_dict_is_json_shaped(self):
        import json

        store = EvaluationStore(capacity=8)
        store.get_or_compute("s", "k", lambda: "v")
        payload = store.stats().as_dict()
        # Round-trips through JSON without custom encoders.
        decoded = json.loads(json.dumps(payload))
        assert decoded["capacity"] == 8
        assert decoded["stages"]["s"]["misses"] == 1

    def test_clear_resets_everything(self):
        store = EvaluationStore(capacity=2)
        for i in range(5):
            store.get_or_compute("s", i, lambda: i)
        store.clear()
        assert len(store) == 0
        stats = store.stats()
        assert stats.lookups == 0
        assert stats.evictions == 0
        assert not stats.stages


class _DictTier:
    """Minimal in-memory PersistentTier for store-side tests."""

    def __init__(self, stages=("detector",)):
        self.stages = set(stages)
        self.data = {}
        self.loads = 0
        self.stores = 0

    def accepts(self, stage):
        return stage in self.stages

    def load(self, stage, key):
        self.loads += 1
        return self.data.get((stage, key))

    def store(self, stage, key, value):
        self.stores += 1
        self.data[(stage, key)] = value


class TestPersistentTier:
    def test_put_writes_through(self):
        tier = _DictTier()
        store = EvaluationStore(capacity=8, tier=tier)
        store.put("detector", "k", "v")
        assert tier.data == {("detector", "k"): "v"}

    def test_unaccepted_stage_not_written(self):
        tier = _DictTier(stages=("detector",))
        store = EvaluationStore(capacity=8, tier=tier)
        store.put("est_ap", "k", 0.5)
        assert not tier.data

    def test_miss_promotes_from_tier_and_counts_hit(self):
        tier = _DictTier()
        tier.data[("detector", "k")] = "persisted"
        store = EvaluationStore(capacity=8, tier=tier)
        assert store.get("detector", "k") == "persisted"
        stats = store.stats()
        assert stats.hits == 1
        assert stats.misses == 0
        assert stats.tier_hits == 1
        # Promoted into memory: the next get never consults the tier.
        loads_before = tier.loads
        assert store.get("detector", "k") == "persisted"
        assert tier.loads == loads_before

    def test_contains_promotes_without_counting_lookup(self):
        tier = _DictTier()
        tier.data[("detector", "k")] = "persisted"
        store = EvaluationStore(capacity=8, tier=tier)
        assert store.contains("detector", "k")
        stats = store.stats()
        assert stats.lookups == 0
        assert stats.tier_hits == 1

    def test_tier_miss_falls_through(self):
        tier = _DictTier()
        store = EvaluationStore(capacity=8, tier=tier)
        assert store.get("detector", "absent") is None
        stats = store.stats()
        assert stats.misses == 1
        assert stats.tier_hits == 0

    def test_attach_tier_mid_run(self):
        store = EvaluationStore(capacity=8)
        store.put("detector", "cold", "v0")  # no tier yet: memory only
        tier = _DictTier()
        store.attach_tier(tier)
        store.put("detector", "warm", "v1")
        assert ("detector", "warm") in tier.data
        assert ("detector", "cold") not in tier.data
        store.attach_tier(None)
        store.put("detector", "later", "v2")
        assert ("detector", "later") not in tier.data

    def test_get_or_compute_skips_compute_on_tier_hit(self):
        tier = _DictTier()
        tier.data[("detector", "k")] = "persisted"
        store = EvaluationStore(capacity=8, tier=tier)
        computed = []
        value = store.get_or_compute(
            "detector", "k", lambda: computed.append(1) or "fresh"
        )
        assert value == "persisted"
        assert not computed

    def test_clear_resets_tier_hits(self):
        tier = _DictTier()
        tier.data[("detector", "k")] = "v"
        store = EvaluationStore(capacity=8, tier=tier)
        store.get("detector", "k")
        store.clear()
        assert store.stats().tier_hits == 0

    def test_stats_as_dict_includes_tier_hits(self):
        store = EvaluationStore(capacity=8)
        assert store.stats().as_dict()["tier_hits"] == 0


class TestThreadSafety:
    def test_concurrent_get_or_compute(self):
        store = EvaluationStore(capacity=64)
        errors = []

        def worker(seed):
            try:
                for i in range(200):
                    key = (seed + i) % 40
                    value = store.get_or_compute("s", key, lambda k=key: k * 2)
                    assert value == key * 2
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(s,)) for s in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = store.stats()
        assert stats.hits + stats.misses == stats.lookups
        assert len(store) <= 64

    def test_concurrent_eviction_pressure(self):
        store = EvaluationStore(capacity=8)

        def worker(base):
            for i in range(300):
                store.get_or_compute("s", base * 1000 + i, lambda: i)

        threads = [
            threading.Thread(target=worker, args=(b,)) for b in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(store) <= 8
        stats = store.stats()
        assert stats.hits + stats.misses == stats.lookups
        assert stats.evictions > 0


class TestBatchedOperations:
    """get_many / contains_many / put_many: one lock, sequential semantics."""

    def test_get_many_matches_sequential_gets(self):
        batched = EvaluationStore(capacity=16)
        sequential = EvaluationStore(capacity=16)
        for store in (batched, sequential):
            store.put("detector", ("f1", "m1"), "a")
            store.put("detector", ("f1", "m2"), "b")
        keys = [("f1", "m1"), ("f1", "m9"), ("f1", "m2"), ("f1", "m1")]
        results = batched.get_many("detector", keys)
        assert results == ["a", None, "b", "a"]
        assert results == [sequential.get("detector", k) for k in keys]
        # Stats parity with the sequential path: same lookups, hits,
        # misses — batching is invisible to the counters.
        assert batched.stats() == sequential.stats()

    def test_get_many_counts_each_key(self):
        store = EvaluationStore(capacity=16)
        store.put("s", 1, "x")
        store.get_many("s", [1, 2, 1, 3])
        stats = store.stats()
        assert stats.lookups == 4
        assert stats.hits == 2
        assert stats.misses == 2

    def test_get_many_refreshes_lru_order(self):
        store = EvaluationStore(capacity=2)
        store.put("s", 1, "a")
        store.put("s", 2, "b")
        store.get_many("s", [1])  # 1 becomes most-recent
        store.put("s", 3, "c")  # evicts 2
        assert store.contains("s", 1)
        assert not store.contains("s", 2)

    def test_contains_many_matches_sequential_contains(self):
        store = EvaluationStore(capacity=16)
        store.put("detector", ("f1", "m1"), "a")
        keys = [("f1", "m1"), ("f1", "m2")]
        assert store.contains_many("detector", keys) == [
            store.contains("detector", k) for k in keys
        ]
        # Like contains(), no lookup is counted.
        assert store.stats().lookups == 0

    def test_contains_many_promotes_from_tier(self):
        tier = _DictTier(stages=("detector",))
        tier.store("detector", "k", "v")
        store = EvaluationStore(capacity=16, tier=tier)
        assert store.contains_many("detector", ["k", "missing"]) == [
            True,
            False,
        ]
        # The tier hit was promoted into memory.
        assert ("detector", "k") in store._entries

    def test_put_many_matches_sequential_puts(self):
        batched = EvaluationStore(capacity=16)
        sequential = EvaluationStore(capacity=16)
        items = [(1, "a", 2.0), (2, "b", 3.0), (1, "dup", 1.0)]
        batched.put_many("s", items)
        for key, value, ms in items:
            sequential.put("s", key, value, ms)
        assert batched.get("s", 1) == sequential.get("s", 1) == "a"
        assert batched.get("s", 2) == sequential.get("s", 2) == "b"
        assert batched.stats() == sequential.stats()

    def test_put_many_validates_before_inserting_anything(self):
        store = EvaluationStore(capacity=16)
        with pytest.raises(ValueError, match="None"):
            store.put_many("s", [(1, "ok", 0.0), (2, None, 0.0)])
        with pytest.raises(ValueError, match="compute_ms"):
            store.put_many("s", [(3, "ok", -1.0)])
        # All-or-nothing: the valid leading item was not inserted.
        assert len(store) == 0

    def test_put_many_writes_through_to_tier(self):
        tier = _DictTier(stages=("detector",))
        store = EvaluationStore(capacity=16, tier=tier)
        store.put_many("detector", [("k1", "v1", 0.0), ("k2", "v2", 0.0)])
        store.put_many("reference", [("k3", "v3", 0.0)])  # not accepted
        assert tier.data == {
            ("detector", "k1"): "v1",
            ("detector", "k2"): "v2",
        }

    def test_put_many_respects_capacity(self):
        store = EvaluationStore(capacity=3)
        store.put_many("s", [(i, str(i), 0.0) for i in range(10)])
        assert len(store) == 3
        assert store.stats().evictions == 7
