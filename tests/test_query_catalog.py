"""Tests for the query catalog."""

import pytest

from repro.query.catalog import Catalog, CatalogError, DetectorProfile


class _Model:
    def __init__(self, name, expected_time_ms=7.5):
        self.name = name
        self.expected_time_ms = expected_time_ms

    def detect(self, frame):  # pragma: no cover - never invoked here
        raise NotImplementedError


class TestRegistration:
    def test_video_registration(self, small_video):
        catalog = Catalog()
        catalog.register_video("v", small_video)
        assert catalog.videos == ["v"]
        assert len(catalog.video("v")) == len(small_video)

    def test_raw_frame_sequence_accepted(self, small_video):
        catalog = Catalog()
        catalog.register_video("v", list(small_video.frames[:3]))
        assert len(catalog.video("v")) == 3

    def test_empty_video_rejected(self):
        catalog = Catalog()
        with pytest.raises(ValueError):
            catalog.register_video("v", [])
        with pytest.raises(ValueError):
            catalog.register_video("", [object()])

    def test_detector_requires_name_and_detect(self):
        catalog = Catalog()
        with pytest.raises(ValueError, match="name"):
            catalog.register_detector(object())

        class Named:
            name = "n"

        with pytest.raises(ValueError, match="detect"):
            catalog.register_detector(Named())

    def test_profiles_recorded(self):
        catalog = Catalog()
        catalog.register_detector(_Model("det-a", 12.0))
        catalog.register_reference(_Model("ref-a", 40.0))
        assert catalog.profile("det-a") == DetectorProfile(
            "det-a", 12.0, "detector"
        )
        assert catalog.profile("ref-a").kind == "reference"


class TestLookups:
    def test_unknown_names_raise_catalog_error(self):
        catalog = Catalog()
        with pytest.raises(CatalogError, match="unknown video"):
            catalog.video("ghost")
        with pytest.raises(CatalogError, match="unknown detector"):
            catalog.detector("ghost")
        with pytest.raises(CatalogError, match="unknown reference"):
            catalog.reference("ghost")
        with pytest.raises(CatalogError, match="unknown model"):
            catalog.profile("ghost")

    def test_catalog_error_is_key_error(self):
        with pytest.raises(KeyError):
            Catalog().detector("ghost")

    def test_default_reference_is_first_sorted(self):
        catalog = Catalog()
        assert catalog.default_reference() is None
        catalog.register_reference(_Model("zeta-ref"))
        catalog.register_reference(_Model("alpha-ref"))
        assert catalog.default_reference() == "alpha-ref"

    def test_expected_union_cost(self):
        catalog = Catalog()
        catalog.register_detector(_Model("a", 10.0))
        catalog.register_detector(_Model("b", 2.5))
        assert catalog.expected_union_cost_ms(["a", "b"]) == 12.5
        with pytest.raises(CatalogError):
            catalog.expected_union_cost_ms(["a", "ghost"])
