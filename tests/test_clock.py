"""Unit tests for the cost model and simulated clock."""

import pytest

from repro.simulation.clock import CostModel, SimulatedClock


class TestCostModel:
    def test_ensembling_cost_linear_in_boxes(self):
        model = CostModel(ensembling_base_ms=0.1, ensembling_per_box_ms=0.01)
        assert model.ensembling_cost_ms(0) == pytest.approx(0.1)
        assert model.ensembling_cost_ms(10) == pytest.approx(0.2)

    def test_negative_boxes_rejected(self):
        with pytest.raises(ValueError):
            CostModel().ensembling_cost_ms(-1)

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            CostModel(ensembling_base_ms=-0.1)

    def test_ensembling_far_cheaper_than_inference(self):
        # The Eq. (1) premise: c^e << c_M even for large pools.
        model = CostModel()
        assert model.ensembling_cost_ms(200) < 1.0 < 7.7


class TestSimulatedClock:
    def test_charges_accumulate(self):
        clock = SimulatedClock()
        clock.charge("detector", 10.0)
        clock.charge("detector", 5.0)
        clock.charge("reference", 2.0)
        clock.charge("ensembling", 1.0)
        clock.charge("overhead", 0.5)
        assert clock.detector_ms == 15.0
        assert clock.total_ms == pytest.approx(18.5)

    def test_billable_excludes_reference_and_overhead(self):
        clock = SimulatedClock()
        clock.charge("detector", 10.0)
        clock.charge("reference", 3.0)
        clock.charge("ensembling", 1.0)
        clock.charge("overhead", 2.0)
        assert clock.billable_ms == pytest.approx(11.0)

    def test_unknown_component(self):
        with pytest.raises(KeyError):
            SimulatedClock().charge("gpu", 1.0)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().charge("detector", -1.0)

    def test_breakdown_sums_to_one(self):
        clock = SimulatedClock()
        clock.charge("detector", 90.0)
        clock.charge("reference", 9.0)
        clock.charge("ensembling", 0.5)
        clock.charge("overhead", 0.5)
        breakdown = clock.breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert breakdown["detector"] == pytest.approx(0.9)

    def test_breakdown_empty_clock(self):
        assert set(SimulatedClock().breakdown().values()) == {0.0}

    def test_snapshot_and_reset(self):
        clock = SimulatedClock()
        clock.charge("detector", 1.0)
        snap = clock.snapshot()
        assert snap["detector"] == 1.0
        clock.reset()
        assert clock.total_ms == 0.0
