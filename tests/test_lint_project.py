"""Unit tests for the whole-program layer: project model + call graph.

The edge cases the interprocedural rules (RPR006–RPR009) lean on:
module-name derivation, aliased imports, ``__init__`` re-export chains,
import cycles, decorated functions, methods resolved through ``self``
and base classes, nested defs/lambdas, and layer-config parsing.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import (
    CallGraph,
    DEFAULT_LAYERS,
    FileContext,
    LintConfig,
    Project,
    load_config,
    module_name_for_path,
)
from repro.lint.project import (
    _parse_repro_lint_tables,
    _parse_repro_lint_tables_fallback,
)


def build_project(sources: dict[str, str]) -> Project:
    contexts = {
        path: FileContext.from_source(textwrap.dedent(source), path)
        for path, source in sources.items()
    }
    return Project.from_contexts(contexts)


def build_graph(sources: dict[str, str]) -> tuple[Project, CallGraph]:
    project = build_project(sources)
    return project, CallGraph.build(project)


# ---------------------------------------------------------------------------
# module naming


@pytest.mark.parametrize(
    ("path", "expected"),
    [
        ("src/repro/core/mes.py", "repro.core.mes"),
        ("/abs/repo/src/repro/utils/rng.py", "repro.utils.rng"),
        ("src/repro/engine/__init__.py", "repro.engine"),
        ("src/repro/__init__.py", "repro"),
        ("tests/test_mes.py", "tests.test_mes"),
        ("benchmarks/common.py", "benchmarks.common"),
        ("fixture.py", "fixture"),
    ],
)
def test_module_name_for_path(path: str, expected: str) -> None:
    assert module_name_for_path(path) == expected


# ---------------------------------------------------------------------------
# symbol table and resolution


def test_aliased_module_import_resolves() -> None:
    project = build_project(
        {
            "src/repro/core/mes.py": """
            def choose():
                return 1
            """,
            "src/repro/runner/use.py": """
            import repro.core.mes as m

            def go():
                return m.choose()
            """,
        }
    )
    resolved = project.resolve("repro.runner.use", "m.choose")
    assert resolved is not None
    assert resolved.kind == "function"
    assert resolved.target == "repro.core.mes.choose"


def test_from_import_with_asname_resolves() -> None:
    project = build_project(
        {
            "src/repro/core/mes.py": "def choose():\n    return 1\n",
            "src/repro/runner/use.py": (
                "from repro.core.mes import choose as pick\n"
            ),
        }
    )
    resolved = project.resolve("repro.runner.use", "pick")
    assert resolved is not None
    assert (resolved.kind, resolved.target) == (
        "function",
        "repro.core.mes.choose",
    )


def test_init_reexport_chain_resolves() -> None:
    # core/__init__.py re-exports from core.mes; the user imports from
    # the package, not the defining module.
    project = build_project(
        {
            "src/repro/core/mes.py": "def choose():\n    return 1\n",
            "src/repro/core/__init__.py": "from repro.core.mes import choose\n",
            "src/repro/runner/use.py": "from repro.core import choose\n",
        }
    )
    resolved = project.resolve("repro.runner.use", "choose")
    assert resolved is not None
    assert (resolved.kind, resolved.target) == (
        "function",
        "repro.core.mes.choose",
    )


def test_reexport_cycle_is_resolved_or_none_not_hung() -> None:
    # Mutually re-exporting __init__ files must not recurse forever.
    project = build_project(
        {
            "src/repro/core/__init__.py": "from repro.engine import thing\n",
            "src/repro/engine/__init__.py": "from repro.core import thing\n",
            "src/repro/runner/use.py": "from repro.core import thing\n",
        }
    )
    # No definition anywhere on the cycle: resolution must terminate
    # without claiming a project function or class.
    resolved = project.resolve("repro.runner.use", "thing")
    assert resolved is None or resolved.kind not in ("function", "class")


def test_relative_import_absolutized() -> None:
    project = build_project(
        {
            "src/repro/core/mes.py": "def choose():\n    return 1\n",
            "src/repro/core/helper.py": "from .mes import choose\n",
        }
    )
    resolved = project.resolve("repro.core.helper", "choose")
    assert resolved is not None
    assert resolved.target == "repro.core.mes.choose"


def test_import_cycle_modules_both_resolve() -> None:
    # a imports b at module level, b imports a inside a function — the
    # standard cycle-breaking idiom; both directions must resolve.
    project = build_project(
        {
            "src/repro/core/a.py": """
            from repro.core.b import g

            def f():
                return g()
            """,
            "src/repro/core/b.py": """
            def g():
                from repro.core.a import f
                return f
            """,
        }
    )
    resolved = project.resolve("repro.core.a", "g")
    assert resolved is not None
    assert resolved.target == "repro.core.b.g"
    edges = project.modules["repro.core.b"].imports
    assert any(e.target == "repro.core.a" and e.function_level for e in edges)


def test_type_checking_imports_flagged_as_such() -> None:
    project = build_project(
        {
            "src/repro/engine/pipe.py": """
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from repro.core.mes import MES
            """,
        }
    )
    edges = project.modules["repro.engine.pipe"].imports
    targets = {e.target: e.type_checking for e in edges}
    assert targets["repro.core.mes"] is True


def test_decorated_function_registered_with_decorator_names() -> None:
    project = build_project(
        {
            "src/repro/utils/tools.py": """
            import functools

            def wrap(fn):
                return fn

            @wrap
            @functools.lru_cache(maxsize=8)
            def helper():
                return 1
            """,
        }
    )
    info = project.functions["repro.utils.tools.helper"]
    assert "wrap" in info.decorators
    assert "functools.lru_cache" in info.decorators


def test_nested_defs_and_lambdas_have_qualnames() -> None:
    project = build_project(
        {
            "src/repro/utils/n.py": """
            def outer():
                def inner():
                    return 1
                fn = lambda x: x
                return inner() + fn(1)
            """,
        }
    )
    assert "repro.utils.n.outer.<locals>.inner" in project.functions
    lambdas = [q for q in project.functions if "<lambda" in q]
    assert len(lambdas) == 1
    assert lambdas[0].startswith("repro.utils.n.outer.<locals>.<lambda")


def test_method_lookup_through_base_class() -> None:
    project = build_project(
        {
            "src/repro/ensembling/base.py": """
            class Fusion:
                def fuse(self):
                    return 0
            """,
            "src/repro/ensembling/wbf.py": """
            from repro.ensembling.base import Fusion

            class WBF(Fusion):
                pass
            """,
        }
    )
    assert (
        project.method("repro.ensembling.wbf.WBF", "fuse")
        == "repro.ensembling.base.Fusion.fuse"
    )


def test_layer_of() -> None:
    project = build_project({"src/repro/core/mes.py": "X = 1\n"})
    assert project.layer_of("repro.core.mes") == "core"
    assert project.layer_of("repro") == "root"
    assert project.layer_of("repro.cli") == "cli"
    assert project.layer_of("tests.test_mes") is None


# ---------------------------------------------------------------------------
# call graph


def test_call_edge_through_alias_and_reexport() -> None:
    project, graph = build_graph(
        {
            "src/repro/core/mes.py": "def choose():\n    return 1\n",
            "src/repro/core/__init__.py": "from repro.core.mes import choose\n",
            "src/repro/runner/use.py": """
            from repro.core import choose

            def go():
                return choose()
            """,
        }
    )
    callees = {s.callee for s in graph.callees("repro.runner.use.go")}
    assert callees == {"repro.core.mes.choose"}
    callers = {s.caller for s in graph.callers("repro.core.mes.choose")}
    assert callers == {"repro.runner.use.go"}


def test_self_method_call_resolves_through_base() -> None:
    project, graph = build_graph(
        {
            "src/repro/ensembling/m.py": """
            class Base:
                def helper(self):
                    return 1

            class Child(Base):
                def run(self):
                    return self.helper()
            """,
        }
    )
    callees = {s.callee for s in graph.callees("repro.ensembling.m.Child.run")}
    assert callees == {"repro.ensembling.m.Base.helper"}


def test_local_constructor_type_inference() -> None:
    project, graph = build_graph(
        {
            "src/repro/engine/store.py": """
            class Store:
                def put(self, key):
                    return key
            """,
            "src/repro/runner/use.py": """
            from repro.engine.store import Store

            def go():
                store = Store()
                return store.put(1)
            """,
        }
    )
    callees = {s.callee for s in graph.callees("repro.runner.use.go")}
    assert "repro.engine.store.Store.put" in callees


def test_constructor_call_resolves_to_init() -> None:
    project, graph = build_graph(
        {
            "src/repro/engine/store.py": """
            class Store:
                def __init__(self):
                    self.data = {}
            """,
            "src/repro/runner/use.py": """
            from repro.engine.store import Store

            def go():
                return Store()
            """,
        }
    )
    callees = {s.callee for s in graph.callees("repro.runner.use.go")}
    assert callees == {"repro.engine.store.Store.__init__"}


def test_nested_def_call_preferred_over_module_global() -> None:
    project, graph = build_graph(
        {
            "src/repro/utils/n.py": """
            def helper():
                return "module"

            def outer():
                def helper():
                    return "nested"
                return helper()
            """,
        }
    )
    callees = {s.callee for s in graph.callees("repro.utils.n.outer")}
    assert callees == {"repro.utils.n.outer.<locals>.helper"}


def test_recursive_cycle_edges_exist() -> None:
    project, graph = build_graph(
        {
            "src/repro/utils/r.py": """
            def even(n):
                return n == 0 or odd(n - 1)

            def odd(n):
                return n != 0 and even(n - 1)
            """,
        }
    )
    assert {s.callee for s in graph.callees("repro.utils.r.even")} == {
        "repro.utils.r.odd"
    }
    assert {s.callee for s in graph.callees("repro.utils.r.odd")} == {
        "repro.utils.r.even"
    }


def test_external_calls_produce_no_edges() -> None:
    project, graph = build_graph(
        {
            "src/repro/utils/x.py": """
            import numpy as np

            def go():
                return np.mean([1.0]) + len([1]) + sorted([2])[0]
            """,
        }
    )
    assert graph.callees("repro.utils.x.go") == ()


# ---------------------------------------------------------------------------
# layer config parsing


def test_default_layers_form_a_dag() -> None:
    # Every referenced layer is declared, and the declaration order admits
    # a topological order (no layer reachable from itself).
    for layer, allowed in DEFAULT_LAYERS.items():
        for dep in allowed:
            assert dep in DEFAULT_LAYERS, f"{layer} -> undeclared {dep}"

    def reachable(start: str) -> set[str]:
        seen: set[str] = set()
        stack = [start]
        while stack:
            current = stack.pop()
            for dep in DEFAULT_LAYERS.get(current, ()):
                if dep not in seen:
                    seen.add(dep)
                    stack.append(dep)
        return seen

    for layer in DEFAULT_LAYERS:
        assert layer not in reachable(layer), f"cycle through {layer}"


TOML_SNIPPET = textwrap.dedent(
    """
    [project]
    name = "x"

    [tool.repro-lint.layers]
    # comment line
    utils = []
    core = ["utils"]
    cli = [
        "core",
        "utils",
    ]

    [tool.other]
    key = "value"
    """
)

TOML_SNIPPET_WITH_PERSISTENCE = textwrap.dedent(
    """
    [tool.repro-lint]
    persistence = ["store", "/io.py"]

    [tool.repro-lint.layers]
    utils = []
    core = ["utils"]
    """
)


def test_layer_table_parsers_agree() -> None:
    expected = {"utils": (), "core": ("utils",), "cli": ("core", "utils")}
    for parse in (_parse_repro_lint_tables, _parse_repro_lint_tables_fallback):
        config = parse(TOML_SNIPPET)
        assert config.layers == expected
        assert config.persistence is None
        # [tool.other] belongs to another tool — never an unknown key.
        assert config.unknown_keys == ()


def test_persistence_list_parsers_agree() -> None:
    for parse in (_parse_repro_lint_tables, _parse_repro_lint_tables_fallback):
        config = parse(TOML_SNIPPET_WITH_PERSISTENCE)
        assert config.layers == {"utils": (), "core": ("utils",)}
        assert config.persistence == ("store", "/io.py")
        assert config.unknown_keys == ()


TOML_SNIPPET_WITH_TYPOS = textwrap.dedent(
    """
    [tool.repro-lint]
    persistance = ["store"]
    sanctioned-seams = ["pkg.clock.now"]
    bound-methods = ["drop_oldest"]

    [tool.repro-lint.layres]
    utils = []
    """
)


def test_unknown_keys_collected_by_both_parsers() -> None:
    for parse in (_parse_repro_lint_tables, _parse_repro_lint_tables_fallback):
        config = parse(TOML_SNIPPET_WITH_TYPOS)
        assert config.unknown_keys == ("layres", "persistance")
        # Known keys still parse despite the typos alongside them.
        assert config.sanctioned_seams == ("pkg.clock.now",)
        assert config.bound_methods == ("drop_oldest",)


def test_unknown_keys_excluded_from_fingerprint() -> None:
    clean = LintConfig()
    typod = LintConfig(unknown_keys=("persistance",))
    assert clean.fingerprint() == typod.fingerprint()


def test_seam_and_bound_method_accessors_union_defaults() -> None:
    config = LintConfig(
        sanctioned_seams=("pkg.clock.now",), bound_methods=("drop_oldest",)
    )
    seams = config.sanctioned_seam_targets()
    bounds = config.bounding_methods()
    assert "pkg.clock.now" in seams
    assert "repro.utils.rng.derive_rng" in seams
    assert "drop_oldest" in bounds
    assert "evict" in bounds


def test_load_config_finds_repo_pyproject(tmp_path) -> None:
    (tmp_path / "pyproject.toml").write_text(
        "[tool.repro-lint.layers]\na = []\nb = [\"a\"]\n", encoding="utf-8"
    )
    nested = tmp_path / "src" / "pkg"
    nested.mkdir(parents=True)
    config = load_config(nested)
    assert config.layers == {"a": (), "b": ("a",)}


def test_load_config_without_pyproject_uses_defaults(tmp_path) -> None:
    config = load_config(tmp_path)
    assert config.layers is None
    assert config.layer_dag() == DEFAULT_LAYERS


def test_lint_config_default_dag() -> None:
    assert LintConfig().layer_dag() is DEFAULT_LAYERS
    custom = LintConfig(layers={"a": ()})
    assert custom.layer_dag() == {"a": ()}
