"""Property-based tests over all fusion methods."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection.boxes import BBox
from repro.detection.types import Detection, FrameDetections
from repro.ensembling.registry import available_methods, create_method

labels = st.sampled_from(["car", "bus"])


@st.composite
def detections(draw):
    x1 = draw(st.floats(min_value=0, max_value=800))
    y1 = draw(st.floats(min_value=0, max_value=400))
    w = draw(st.floats(min_value=5, max_value=300))
    h = draw(st.floats(min_value=5, max_value=200))
    conf = draw(st.floats(min_value=0.05, max_value=0.99))
    source = draw(st.sampled_from(["m1", "m2", "m3"]))
    return Detection(BBox(x1, y1, x1 + w, y1 + h), conf, draw(labels), source=source)


@st.composite
def detector_outputs(draw):
    num_models = draw(st.integers(min_value=1, max_value=3))
    frames = []
    for i in range(num_models):
        dets = draw(st.lists(detections(), min_size=0, max_size=5))
        frames.append(FrameDetections(0, tuple(dets), source=f"m{i+1}"))
    return frames


@pytest.mark.parametrize("method_name", available_methods())
@given(per_detector=detector_outputs())
@settings(max_examples=25, deadline=None)
def test_fusion_invariants(method_name, per_detector):
    """Invariants every fusion method must satisfy."""
    method = create_method(method_name)
    fused = method.fuse(per_detector)

    total_in = sum(len(f) for f in per_detector)
    # Fusion never invents detections.
    assert len(fused) <= total_in
    # Output frame metadata.
    assert fused.frame_index == 0
    assert fused.source == method_name

    input_labels = {d.label for f in per_detector for d in f}
    for det in fused:
        # Confidences remain valid probabilities.
        assert 0.0 <= det.confidence <= 1.0
        # No new class labels appear.
        assert det.label in input_labels
        # Fused boxes stay within the inputs' bounding hull.
        hull = None
        for f in per_detector:
            for d in f:
                hull = d.box if hull is None else hull.enclosing(d.box)
        assert hull is not None
        assert hull.x1 - 1e-6 <= det.box.x1
        assert det.box.x2 <= hull.x2 + 1e-6
        assert hull.y1 - 1e-6 <= det.box.y1
        assert det.box.y2 <= hull.y2 + 1e-6

    # Output ordered by decreasing confidence.
    confs = [d.confidence for d in fused]
    assert confs == sorted(confs, reverse=True)


@pytest.mark.parametrize("method_name", available_methods())
@given(per_detector=detector_outputs())
@settings(max_examples=15, deadline=None)
def test_fusion_deterministic(method_name, per_detector):
    method = create_method(method_name)
    assert method.fuse(per_detector) == method.fuse(per_detector)


@pytest.mark.parametrize("method_name", available_methods())
def test_fusion_empty_inputs(method_name):
    method = create_method(method_name)
    fused = method.fuse([FrameDetections(0), FrameDetections(0)])
    assert len(fused) == 0
