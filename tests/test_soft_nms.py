"""Unit tests for Soft-NMS."""

import math

import pytest

from repro.detection.boxes import BBox
from repro.detection.types import Detection, FrameDetections
from repro.ensembling.soft_nms import SoftNMS


def frame(dets, index=0):
    return FrameDetections(index, tuple(dets))


def det(x1, y1, x2, y2, conf, label="car", source="m1"):
    return Detection(BBox(x1, y1, x2, y2), conf, label, source=source)


class TestSoftNMS:
    def test_gaussian_decay_keeps_overlapping_box_with_lower_conf(self):
        soft = SoftNMS(method="gaussian", sigma=0.5, score_threshold=0.05)
        result = soft.fuse(
            [frame([det(0, 0, 10, 10, 0.9), det(1, 0, 11, 10, 0.8)])]
        )
        assert len(result) == 2
        confs = sorted((d.confidence for d in result), reverse=True)
        assert confs[0] == 0.9
        # The second box decayed below its original confidence.
        assert confs[1] < 0.8

    def test_gaussian_decay_factor_value(self):
        soft = SoftNMS(method="gaussian", sigma=0.5)
        a = det(0, 0, 10, 10, 0.9)
        b = det(0, 0, 10, 10, 0.8)  # IoU 1 with a
        result = soft.fuse([frame([a, b])])
        decayed = min(d.confidence for d in result)
        assert decayed == pytest.approx(0.8 * math.exp(-1.0 / 0.5))

    def test_linear_decay_only_above_threshold(self):
        soft = SoftNMS(method="linear", iou_threshold=0.5, score_threshold=0.01)
        a = det(0, 0, 10, 10, 0.9)
        far = det(100, 100, 110, 110, 0.8)  # no overlap: untouched
        result = soft.fuse([frame([a, far])])
        assert {d.confidence for d in result} == {0.9, 0.8}

    def test_linear_decay_applies(self):
        soft = SoftNMS(method="linear", iou_threshold=0.3, score_threshold=0.01)
        a = det(0, 0, 10, 10, 0.9)
        b = det(0, 0, 10, 10, 0.6)  # IoU 1 -> conf *= (1 - 1) = 0
        result = soft.fuse([frame([a, b])])
        assert len(result) == 1

    def test_score_threshold_drops_decayed(self):
        soft = SoftNMS(method="gaussian", sigma=0.1, score_threshold=0.5)
        a = det(0, 0, 10, 10, 0.9)
        b = det(0, 0, 10, 10, 0.8)  # decays to 0.8*exp(-10) ~ 0
        result = soft.fuse([frame([a, b])])
        assert len(result) == 1

    def test_invalid_method(self):
        with pytest.raises(ValueError):
            SoftNMS(method="cubic")

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            SoftNMS(sigma=0.0)

    def test_classes_independent(self):
        soft = SoftNMS()
        result = soft.fuse(
            [
                frame(
                    [
                        det(0, 0, 10, 10, 0.9, label="car"),
                        det(0, 0, 10, 10, 0.9, label="bus"),
                    ]
                )
            ]
        )
        assert {d.confidence for d in result} == {0.9}
        assert len(result) == 2

    def test_repeated_decay_accumulates(self):
        # Three coincident boxes: the third decays from both survivors.
        soft = SoftNMS(method="gaussian", sigma=0.5, score_threshold=0.0)
        boxes = [det(0, 0, 10, 10, c) for c in (0.9, 0.8, 0.7)]
        result = soft.fuse([frame(boxes)])
        confs = sorted((d.confidence for d in result), reverse=True)
        factor = math.exp(-1.0 / 0.5)
        assert confs[1] == pytest.approx(0.8 * factor)
        assert confs[2] == pytest.approx(0.7 * factor * factor)
