"""Execution-backend equivalence: backends change wall clock, not results.

The acceptance property of the engine refactor: Serial, ThreadPool and
ProcessPool backends must produce bitwise-identical selection runs —
identical :class:`FrameRecord` sequences *and* identical simulated-clock
ledgers — because every simulated charge is computed from detector
outputs, never from how they were scheduled.
"""

from __future__ import annotations

import pytest

from repro.core.environment import DetectionEnvironment
from repro.core.mes import MES
from repro.core.mes_b import MESB
from repro.core.sw_mes import SWMES
from repro.engine.backends import (
    BACKEND_NAMES,
    InferenceJob,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    make_backend,
    submission_chunksize,
)

#: algorithm -> (factory, budget_ms); MES-B is budget-mandatory (TCVI).
ALGORITHMS = {
    "mes": (lambda: MES(), None),
    "mes-b": (lambda: MESB(), 2_000.0),
    "sw-mes": (lambda: SWMES(window=8), None),
}


def _run(algorithm, backend, detector_pool, lidar, frames, billing="sum"):
    factory, budget_ms = ALGORITHMS[algorithm]
    env = DetectionEnvironment(
        detector_pool, lidar, backend=backend, billing=billing
    )
    result = factory().run(env, frames, budget_ms=budget_ms)
    return result, env.clock.snapshot()


class TestBackendEquivalence:
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    @pytest.mark.parametrize("backend_name", ["thread", "process"])
    def test_identical_to_serial(
        self, algorithm, backend_name, detector_pool, lidar, small_video
    ):
        frames = small_video.frames[:12]
        serial_result, serial_clock = _run(
            algorithm, SerialBackend(), detector_pool, lidar, frames
        )
        backend = make_backend(backend_name, workers=4)
        try:
            result, clock = _run(
                algorithm, backend, detector_pool, lidar, frames
            )
        finally:
            backend.close()
        # Bitwise equality: FrameRecord is a frozen dataclass of floats,
        # so == means every field (scores, costs, charges) is identical.
        assert result.records == serial_result.records
        assert result.s_sum == serial_result.s_sum
        assert clock == serial_clock

    def test_thread_backend_with_shared_store_matches_serial(
        self, detector_pool, lidar, small_video
    ):
        from repro.engine.store import EvaluationStore

        frames = small_video.frames[:10]
        serial_result, serial_clock = _run(
            "mes", SerialBackend(), detector_pool, lidar, frames
        )
        store = EvaluationStore()
        with ThreadPoolBackend(workers=4) as backend:
            env = DetectionEnvironment(
                detector_pool, lidar, cache=store, backend=backend
            )
            result = MES().run(env, frames)
            assert result.records == serial_result.records
            assert env.clock.snapshot() == serial_clock


class TestFaultedBackendEquivalence:
    """Fault-injected runs must stay backend-independent: the resilient
    layer does all breaker/retry bookkeeping on the calling thread, so
    serial and threaded execution see the same fault trace."""

    @pytest.mark.parametrize("profile", ["flaky-first", "outage-first"])
    def test_faulty_serial_matches_faulty_thread(
        self, profile, detector_pool, lidar, small_video
    ):
        from repro.engine.resilience import (
            BreakerPolicy,
            ResilientBackend,
            RetryPolicy,
        )
        from repro.simulation.faults import apply_fault_profile

        frames = small_video.frames[:12]

        def faulty_run(inner):
            # Fresh wrappers per run: FaultyDetector keeps per-frame
            # attempt counters, so the pools must not be shared.
            pool = apply_fault_profile(detector_pool, profile, seed=5)
            backend = ResilientBackend(
                inner,
                retry=RetryPolicy(max_attempts=2, seed=5),
                breaker=BreakerPolicy(failure_threshold=2, cooldown_batches=3),
            )
            with backend:
                env = DetectionEnvironment(pool, lidar, backend=backend)
                result = MES(gamma=3).run(env, frames)
                return result, env.clock.snapshot(), env.fault_stats()

        serial = faulty_run(SerialBackend())
        threaded = faulty_run(ThreadPoolBackend(workers=4))
        serial_result, serial_clock, serial_stats = serial
        thread_result, thread_clock, thread_stats = threaded
        assert thread_result.records == serial_result.records
        assert thread_result.s_sum == serial_result.s_sum
        assert thread_clock == serial_clock
        assert thread_stats.as_dict() == serial_stats.as_dict()
        if profile == "outage-first":
            assert serial_stats.failures > 0

    def test_chaos_metrics_snapshots_backend_independent(
        self, detector_pool, lidar, small_video
    ):
        """Serial and thread-4w runs under the chaos fault profile must
        produce *identical* logical metric snapshots — frames, retries,
        degradations — because the registry records only counts and
        simulated milliseconds, never scheduling-dependent values."""
        from repro.engine.resilience import (
            BreakerPolicy,
            ResilientBackend,
            RetryPolicy,
        )
        from repro.obs import Observability
        from repro.simulation.faults import apply_fault_profile

        frames = small_video.frames[:12]

        def chaotic_run(make_inner):
            obs = Observability(level="metrics")
            pool = apply_fault_profile(detector_pool, "chaos", seed=5)
            backend = ResilientBackend(
                make_inner(obs),
                retry=RetryPolicy(max_attempts=2, seed=5),
                breaker=BreakerPolicy(failure_threshold=2, cooldown_batches=3),
                obs=obs,
            )
            with backend:
                env = DetectionEnvironment(pool, lidar, backend=backend, obs=obs)
                result = MES(gamma=3).run(env, frames)
                return result, env.fault_stats(), obs

        serial_result, serial_stats, serial_obs = chaotic_run(
            lambda obs: SerialBackend(obs=obs)
        )
        thread_result, thread_stats, thread_obs = chaotic_run(
            lambda obs: ThreadPoolBackend(workers=4, obs=obs)
        )
        assert thread_result.records == serial_result.records

        serial_snap = serial_obs.snapshot()
        thread_snap = thread_obs.snapshot()
        # The headline property: the whole snapshot is equal, not just a
        # few counters — as_dict() covers every series deterministically.
        assert thread_snap.as_dict() == serial_snap.as_dict()

        # Sanity-check the logical counters against independent sources.
        assert serial_snap.counter_value(
            "repro_frames_total", algorithm=serial_result.algorithm
        ) == len(serial_result.records)
        assert serial_snap.counter_total("repro_retries_total") == (
            serial_stats.retries
        )
        degraded = sum(1 for r in serial_result.records if r.degraded)
        assert serial_snap.counter_total("repro_frames_degraded_total") == (
            degraded
        )
        # The event streams agree too (same logical facts, same order).
        assert serial_obs.events.events() == thread_obs.events.events()

    def test_faulty_runs_are_reproducible(
        self, detector_pool, lidar, small_video
    ):
        from repro.engine.resilience import ResilientBackend, RetryPolicy
        from repro.simulation.faults import apply_fault_profile

        frames = small_video.frames[:10]

        def run_once():
            pool = apply_fault_profile(detector_pool, "chaos", seed=11)
            backend = ResilientBackend(
                SerialBackend(), retry=RetryPolicy(max_attempts=2, seed=11)
            )
            env = DetectionEnvironment(pool, lidar, backend=backend)
            result = MES(gamma=3).run(env, frames)
            return result.records, env.fault_stats()

        first_records, first_stats = run_once()
        second_records, second_stats = run_once()
        assert first_records == second_records
        assert first_stats == second_stats


class TestBillingPolicy:
    def test_max_charges_slowest_member_only(
        self, detector_pool, lidar, simple_frame
    ):
        env_sum = DetectionEnvironment(detector_pool, lidar, billing="sum")
        env_max = DetectionEnvironment(detector_pool, lidar, billing="max")
        keys = [env_sum.full_ensemble]
        batch_sum = env_sum.evaluate(simple_frame, keys, charge=True)
        batch_max = env_max.evaluate(simple_frame, keys, charge=True)
        members = [
            env_sum._single_output(simple_frame, m).inference_time_ms
            for m in env_sum.model_names
        ]
        assert batch_sum.detector_ms == pytest.approx(sum(members))
        assert batch_max.detector_ms == pytest.approx(max(members))
        assert env_max.clock.detector_ms < env_sum.clock.detector_ms

    def test_billing_does_not_change_scores(
        self, detector_pool, lidar, simple_frame
    ):
        """The policy bills the clock; per-ensemble scoring costs (Eq. 1)
        are the ensemble's own and unaffected."""
        env_sum = DetectionEnvironment(detector_pool, lidar, billing="sum")
        env_max = DetectionEnvironment(detector_pool, lidar, billing="max")
        keys = env_sum.all_ensembles
        batch_sum = env_sum.evaluate(simple_frame, keys, charge=False)
        batch_max = env_max.evaluate(simple_frame, keys, charge=False)
        for key in keys:
            assert (
                batch_sum.evaluations[key].est_score
                == batch_max.evaluations[key].est_score
            )
            assert (
                batch_sum.evaluations[key].cost_ms
                == batch_max.evaluations[key].cost_ms
            )

    def test_unknown_policy_rejected(self, detector_pool, lidar):
        with pytest.raises(ValueError, match="billing"):
            DetectionEnvironment(detector_pool, lidar, billing="mean")


class TestBackendMechanics:
    def test_make_backend_names(self):
        for name in BACKEND_NAMES:
            backend = make_backend(name, workers=2)
            try:
                assert backend.name == name
            finally:
                backend.close()

    def test_make_backend_unknown_name(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("gpu")

    def test_workers_validated(self):
        with pytest.raises(ValueError):
            ThreadPoolBackend(workers=0)
        with pytest.raises(ValueError):
            ProcessPoolBackend(workers=-1)

    def test_results_preserve_job_order(self, detector_pool, simple_frame):
        jobs = [InferenceJob(d, simple_frame) for d in detector_pool]
        serial = SerialBackend().run(jobs)
        with ThreadPoolBackend(workers=3) as backend:
            threaded = backend.run(jobs)
        assert [r.output for r in serial] == [r.output for r in threaded]

    def test_single_job_skips_pool_dispatch(self, detector_pool, simple_frame):
        with ThreadPoolBackend(workers=2) as backend:
            results = backend.run([InferenceJob(detector_pool[0], simple_frame)])
            assert len(results) == 1
            # The lazy pool was never needed for a single job.
            assert backend._executor is None

    def test_close_is_idempotent(self):
        backend = ThreadPoolBackend(workers=2)
        backend.close()
        backend.close()

    def test_environment_reusable_after_clock_reset(
        self, detector_pool, lidar, small_video
    ):
        frames = small_video.frames[:8]
        with ThreadPoolBackend(workers=4) as backend:
            env = DetectionEnvironment(detector_pool, lidar, backend=backend)
            first = MES().run(env, frames)
            first_clock = env.clock.snapshot()
            env.clock.reset()
            assert env.clock.total_ms == 0.0
            second = MES().run(env, frames)
            # Same frames, same detectors, warm store: identical charges.
            assert env.clock.snapshot() == first_clock
            assert second.records == first.records


class TestSubmissionChunksize:
    """The chunked-submission policy and the batched paths that use it."""

    def test_policy_mirrors_lint_engine(self):
        # max(1, jobs // (workers * 4)): ~4 chunks per worker.
        assert submission_chunksize(1, 4) == 1
        assert submission_chunksize(16, 4) == 1
        assert submission_chunksize(64, 4) == 4
        assert submission_chunksize(512, 4) == 32
        assert submission_chunksize(10, 1) == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="num_jobs"):
            submission_chunksize(0, 4)
        with pytest.raises(ValueError, match="workers"):
            submission_chunksize(8, 0)

    def test_large_batch_bitwise_equivalent_across_backends(
        self, detector_pool, small_video
    ):
        # 24 frames x 3 detectors = 72 jobs: chunksize 72 // 16 = 4, so
        # the pool backends actually exercise multi-job chunks here.
        frames = small_video.frames[:24]
        jobs = [InferenceJob(d, f) for f in frames for d in detector_pool]
        assert submission_chunksize(len(jobs), 4) > 1
        serial = SerialBackend().run(jobs)
        assert all(r.ok for r in serial)
        for name in ("thread", "process"):
            backend = make_backend(name, workers=4)
            try:
                results = backend.run(jobs)
            finally:
                backend.close()
            # map() returns results in job order regardless of chunking;
            # simulated outputs are deterministic, so equality is bitwise.
            assert [r.output for r in results] == [r.output for r in serial]

    def test_prefetch_runs_of_all_backends_identical(
        self, detector_pool, lidar, small_video
    ):
        frames = small_video.frames[:16]

        def run(backend_name):
            backend = make_backend(backend_name, workers=4)
            try:
                env = DetectionEnvironment(
                    detector_pool, lidar, backend=backend
                )
                executed = env.prefetch(frames)
                result = MES().run(env, frames)
                return executed, result, env.clock.snapshot()
            finally:
                backend.close()

        serial_jobs, serial_result, serial_clock = run("serial")
        # Everything was missing: one job per (model, frame) plus REF.
        assert serial_jobs == len(frames) * (len(detector_pool) + 1)
        for name in ("thread", "process"):
            jobs, result, clock = run(name)
            assert jobs == serial_jobs
            assert result.records == serial_result.records
            assert clock == serial_clock
