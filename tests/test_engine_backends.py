"""Execution-backend equivalence: backends change wall clock, not results.

The acceptance property of the engine refactor: Serial, ThreadPool and
ProcessPool backends must produce bitwise-identical selection runs —
identical :class:`FrameRecord` sequences *and* identical simulated-clock
ledgers — because every simulated charge is computed from detector
outputs, never from how they were scheduled.
"""

from __future__ import annotations

import pytest

from repro.core.environment import DetectionEnvironment
from repro.core.mes import MES
from repro.core.mes_b import MESB
from repro.core.sw_mes import SWMES
from repro.engine.backends import (
    BACKEND_NAMES,
    InferenceJob,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    make_backend,
)

#: algorithm -> (factory, budget_ms); MES-B is budget-mandatory (TCVI).
ALGORITHMS = {
    "mes": (lambda: MES(), None),
    "mes-b": (lambda: MESB(), 2_000.0),
    "sw-mes": (lambda: SWMES(window=8), None),
}


def _run(algorithm, backend, detector_pool, lidar, frames, billing="sum"):
    factory, budget_ms = ALGORITHMS[algorithm]
    env = DetectionEnvironment(
        detector_pool, lidar, backend=backend, billing=billing
    )
    result = factory().run(env, frames, budget_ms=budget_ms)
    return result, env.clock.snapshot()


class TestBackendEquivalence:
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    @pytest.mark.parametrize("backend_name", ["thread", "process"])
    def test_identical_to_serial(
        self, algorithm, backend_name, detector_pool, lidar, small_video
    ):
        frames = small_video.frames[:12]
        serial_result, serial_clock = _run(
            algorithm, SerialBackend(), detector_pool, lidar, frames
        )
        backend = make_backend(backend_name, workers=4)
        try:
            result, clock = _run(
                algorithm, backend, detector_pool, lidar, frames
            )
        finally:
            backend.close()
        # Bitwise equality: FrameRecord is a frozen dataclass of floats,
        # so == means every field (scores, costs, charges) is identical.
        assert result.records == serial_result.records
        assert result.s_sum == serial_result.s_sum
        assert clock == serial_clock

    def test_thread_backend_with_shared_store_matches_serial(
        self, detector_pool, lidar, small_video
    ):
        from repro.engine.store import EvaluationStore

        frames = small_video.frames[:10]
        serial_result, serial_clock = _run(
            "mes", SerialBackend(), detector_pool, lidar, frames
        )
        store = EvaluationStore()
        with ThreadPoolBackend(workers=4) as backend:
            env = DetectionEnvironment(
                detector_pool, lidar, cache=store, backend=backend
            )
            result = MES().run(env, frames)
            assert result.records == serial_result.records
            assert env.clock.snapshot() == serial_clock


class TestBillingPolicy:
    def test_max_charges_slowest_member_only(
        self, detector_pool, lidar, simple_frame
    ):
        env_sum = DetectionEnvironment(detector_pool, lidar, billing="sum")
        env_max = DetectionEnvironment(detector_pool, lidar, billing="max")
        keys = [env_sum.full_ensemble]
        batch_sum = env_sum.evaluate(simple_frame, keys, charge=True)
        batch_max = env_max.evaluate(simple_frame, keys, charge=True)
        members = [
            env_sum._single_output(simple_frame, m).inference_time_ms
            for m in env_sum.model_names
        ]
        assert batch_sum.detector_ms == pytest.approx(sum(members))
        assert batch_max.detector_ms == pytest.approx(max(members))
        assert env_max.clock.detector_ms < env_sum.clock.detector_ms

    def test_billing_does_not_change_scores(
        self, detector_pool, lidar, simple_frame
    ):
        """The policy bills the clock; per-ensemble scoring costs (Eq. 1)
        are the ensemble's own and unaffected."""
        env_sum = DetectionEnvironment(detector_pool, lidar, billing="sum")
        env_max = DetectionEnvironment(detector_pool, lidar, billing="max")
        keys = env_sum.all_ensembles
        batch_sum = env_sum.evaluate(simple_frame, keys, charge=False)
        batch_max = env_max.evaluate(simple_frame, keys, charge=False)
        for key in keys:
            assert (
                batch_sum.evaluations[key].est_score
                == batch_max.evaluations[key].est_score
            )
            assert (
                batch_sum.evaluations[key].cost_ms
                == batch_max.evaluations[key].cost_ms
            )

    def test_unknown_policy_rejected(self, detector_pool, lidar):
        with pytest.raises(ValueError, match="billing"):
            DetectionEnvironment(detector_pool, lidar, billing="mean")


class TestBackendMechanics:
    def test_make_backend_names(self):
        for name in BACKEND_NAMES:
            backend = make_backend(name, workers=2)
            try:
                assert backend.name == name
            finally:
                backend.close()

    def test_make_backend_unknown_name(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("gpu")

    def test_workers_validated(self):
        with pytest.raises(ValueError):
            ThreadPoolBackend(workers=0)
        with pytest.raises(ValueError):
            ProcessPoolBackend(workers=-1)

    def test_results_preserve_job_order(self, detector_pool, simple_frame):
        jobs = [InferenceJob(d, simple_frame) for d in detector_pool]
        serial = SerialBackend().run(jobs)
        with ThreadPoolBackend(workers=3) as backend:
            threaded = backend.run(jobs)
        assert [r.output for r in serial] == [r.output for r in threaded]

    def test_single_job_skips_pool_dispatch(self, detector_pool, simple_frame):
        with ThreadPoolBackend(workers=2) as backend:
            results = backend.run([InferenceJob(detector_pool[0], simple_frame)])
            assert len(results) == 1
            # The lazy pool was never needed for a single job.
            assert backend._executor is None

    def test_close_is_idempotent(self):
        backend = ThreadPoolBackend(workers=2)
        backend.close()
        backend.close()

    def test_environment_reusable_after_clock_reset(
        self, detector_pool, lidar, small_video
    ):
        frames = small_video.frames[:8]
        with ThreadPoolBackend(workers=4) as backend:
            env = DetectionEnvironment(detector_pool, lidar, backend=backend)
            first = MES().run(env, frames)
            first_clock = env.clock.snapshot()
            env.clock.reset()
            assert env.clock.total_ms == 0.0
            second = MES().run(env, frames)
            # Same frames, same detectors, warm store: identical charges.
            assert env.clock.snapshot() == first_clock
            assert second.records == first.records
