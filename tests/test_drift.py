"""Unit tests for concept-drift composition."""

import pytest

from repro.simulation.drift import compose_drifting_video, split_segments
from repro.simulation.world import generate_video


@pytest.fixture(scope="module")
def clear_video():
    return generate_video("drift/clear", 50, "clear", seed=1)


@pytest.fixture(scope="module")
def night_video():
    return generate_video("drift/night", 50, "night", seed=2)


@pytest.fixture(scope="module")
def rainy_video():
    return generate_video("drift/rainy", 50, "rainy", seed=3)


class TestSplitSegments:
    def test_even_split(self, clear_video):
        segments = split_segments(clear_video, 10)
        assert len(segments) == 10
        assert all(len(s) == 5 for s in segments)

    def test_uneven_split_distributes_remainder(self, clear_video):
        segments = split_segments(clear_video, 7)
        lengths = [len(s) for s in segments]
        assert sum(lengths) == 50
        assert max(lengths) - min(lengths) <= 1

    def test_segments_reindexed(self, clear_video):
        for segment in split_segments(clear_video, 5):
            assert [f.index for f in segment] == list(range(len(segment)))

    def test_too_many_segments(self, clear_video):
        with pytest.raises(ValueError):
            split_segments(clear_video, 51)

    def test_invalid_count(self, clear_video):
        with pytest.raises(ValueError):
            split_segments(clear_video, 0)


class TestComposeDrifting:
    def test_total_length_preserved(self, clear_video, night_video):
        composed = compose_drifting_video(
            "c&n", [clear_video, night_video], num_segments=10, seed=0
        )
        assert len(composed) == 100

    def test_breakpoints_only_at_source_changes(self, clear_video, night_video):
        composed = compose_drifting_video(
            "c&n", [clear_video, night_video], num_segments=10, seed=0
        )
        # Category changes exactly at recorded breakpoints.
        changes = [
            i
            for i in range(1, len(composed))
            if composed[i].category.name != composed[i - 1].category.name
        ]
        assert list(composed.breakpoints) == changes
        assert composed.num_breakpoints >= 1

    def test_deterministic_shuffle(self, clear_video, night_video):
        a = compose_drifting_video("c&n", [clear_video, night_video], seed=4)
        b = compose_drifting_video("c&n", [clear_video, night_video], seed=4)
        assert [f.category.name for f in a] == [f.category.name for f in b]

    def test_different_seeds_differ(self, clear_video, night_video):
        a = compose_drifting_video("c&n", [clear_video, night_video], seed=4)
        b = compose_drifting_video("c&n", [clear_video, night_video], seed=5)
        assert [f.category.name for f in a] != [f.category.name for f in b]

    def test_three_sources(self, clear_video, night_video, rainy_video):
        composed = compose_drifting_video(
            "c&n&r",
            [clear_video, night_video, rainy_video],
            num_segments=10,
            seed=1,
        )
        assert len(composed) == 150
        categories = {f.category.name for f in composed}
        assert categories == {"clear", "night", "rainy"}

    def test_requires_two_sources(self, clear_video):
        with pytest.raises(ValueError):
            compose_drifting_video("solo", [clear_video])

    def test_indices_contiguous(self, clear_video, night_video):
        composed = compose_drifting_video("c&n", [clear_video, night_video], seed=0)
        assert [f.index for f in composed] == list(range(len(composed)))

    def test_source_labels_length_check(self, clear_video, night_video):
        with pytest.raises(ValueError):
            compose_drifting_video(
                "c&n", [clear_video, night_video], source_labels=["only-one"]
            )


class TestGradualDrift:
    def test_interpolate_endpoints(self):
        from repro.simulation.drift import interpolate_category
        from repro.simulation.scenes import SCENE_CATEGORIES

        clear = SCENE_CATEGORIES["clear"]
        night = SCENE_CATEGORIES["night"]
        start = interpolate_category(clear, night, 0.0)
        end = interpolate_category(clear, night, 1.0)
        assert start.visibility == clear.visibility
        assert end.visibility == night.visibility
        mid = interpolate_category(clear, night, 0.5)
        assert night.visibility < mid.visibility < clear.visibility

    def test_interpolate_invalid_alpha(self):
        from repro.simulation.drift import interpolate_category
        from repro.simulation.scenes import SCENE_CATEGORIES

        with pytest.raises(ValueError):
            interpolate_category(
                SCENE_CATEGORIES["clear"], SCENE_CATEGORIES["night"], 1.5
            )

    def test_gradual_video_schedule(self):
        from repro.simulation.drift import generate_gradual_drift_video

        video = generate_gradual_drift_video(
            "grad/dusk", 100, "clear", "night", seed=3, hold_fraction=0.2
        )
        assert len(video) == 100
        assert video.breakpoints == ()
        visibilities = [f.category.visibility for f in video]
        # Holds at both ends, monotone non-increasing overall.
        assert visibilities[0] == visibilities[10]
        assert visibilities[-1] == visibilities[-10]
        assert all(
            b <= a + 1e-12 for a, b in zip(visibilities, visibilities[1:], strict=False)
        )
        assert visibilities[0] > visibilities[-1]

    def test_gradual_video_deterministic(self):
        from repro.simulation.drift import generate_gradual_drift_video

        a = generate_gradual_drift_video("grad/x", 40, "clear", "rainy", seed=7)
        b = generate_gradual_drift_video("grad/x", 40, "clear", "rainy", seed=7)
        assert all(fa.objects == fb.objects for fa, fb in zip(a, b, strict=True))

    def test_invalid_hold_fraction(self):
        from repro.simulation.drift import generate_gradual_drift_video

        with pytest.raises(ValueError):
            generate_gradual_drift_video("g", 40, "clear", "night", hold_fraction=0.6)

    def test_schedule_length_validated(self):
        from repro.simulation.scenes import SCENE_CATEGORIES
        from repro.simulation.world import generate_video

        with pytest.raises(ValueError, match="schedule"):
            generate_video(
                "g", 10, "clear", seed=0,
                category_schedule=[SCENE_CATEGORIES["clear"]] * 5,
            )
