"""Unit tests for Weighted Boxes Fusion."""

import pytest

from repro.detection.boxes import BBox
from repro.detection.types import Detection, FrameDetections
from repro.ensembling.wbf import WeightedBoxesFusion


def frame(dets, index=0, source=None):
    return FrameDetections(index, tuple(dets), source)


def det(x1, y1, x2, y2, conf, label="car", source="m1"):
    return Detection(BBox(x1, y1, x2, y2), conf, label, source=source)


class TestWBF:
    def test_merges_overlapping_boxes(self):
        wbf = WeightedBoxesFusion(iou_threshold=0.5)
        result = wbf.fuse(
            [
                frame([det(0, 0, 10, 10, 0.8, source="a")]),
                frame([det(2, 0, 12, 10, 0.8, source="b")]),
            ]
        )
        assert len(result) == 1
        merged = result.detections[0]
        # Equal weights: coordinates average.
        assert merged.box.x1 == pytest.approx(1.0)
        assert merged.box.x2 == pytest.approx(11.0)

    def test_confidence_weighted_coordinates(self):
        wbf = WeightedBoxesFusion(iou_threshold=0.5)
        result = wbf.fuse(
            [
                frame([det(0, 0, 10, 10, 0.9, source="a")]),
                frame([det(2, 0, 12, 10, 0.1, source="b")]),
            ]
        )
        merged = result.detections[0]
        # Weighted mean of x1: (0*0.9 + 2*0.1) / 1.0 = 0.2
        assert merged.box.x1 == pytest.approx(0.2)

    def test_full_agreement_keeps_confidence(self):
        wbf = WeightedBoxesFusion()
        result = wbf.fuse(
            [
                frame([det(0, 0, 10, 10, 0.8, source="a")]),
                frame([det(0, 0, 10, 10, 0.6, source="b")]),
            ]
        )
        merged = result.detections[0]
        # avg = 0.7, found by 2/2 models -> no discount.
        assert merged.confidence == pytest.approx(0.7)

    def test_single_model_discovery_discounted(self):
        wbf = WeightedBoxesFusion()
        result = wbf.fuse(
            [
                frame([det(0, 0, 10, 10, 0.8, source="a")]),
                frame([], source="b"),
            ]
        )
        merged = result.detections[0]
        # Found by 1 of 2 models -> confidence halved.
        assert merged.confidence == pytest.approx(0.4)

    def test_single_model_input_not_discounted(self):
        wbf = WeightedBoxesFusion()
        result = wbf.fuse([frame([det(0, 0, 10, 10, 0.8, source="a")])])
        assert result.detections[0].confidence == pytest.approx(0.8)

    def test_max_conf_type(self):
        wbf = WeightedBoxesFusion(conf_type="max")
        result = wbf.fuse(
            [
                frame([det(0, 0, 10, 10, 0.8, source="a")]),
                frame([det(0, 0, 10, 10, 0.6, source="b")]),
            ]
        )
        assert result.detections[0].confidence == pytest.approx(0.8)

    def test_disjoint_boxes_not_merged(self):
        wbf = WeightedBoxesFusion()
        result = wbf.fuse(
            [frame([det(0, 0, 10, 10, 0.9), det(100, 100, 120, 120, 0.8)])]
        )
        assert len(result) == 2

    def test_classes_not_merged(self):
        wbf = WeightedBoxesFusion()
        result = wbf.fuse(
            [
                frame(
                    [
                        det(0, 0, 10, 10, 0.9, label="car"),
                        det(0, 0, 10, 10, 0.9, label="bus"),
                    ]
                )
            ]
        )
        assert len(result) == 2

    def test_confidence_threshold(self):
        wbf = WeightedBoxesFusion(confidence_threshold=0.5)
        result = wbf.fuse([frame([det(0, 0, 10, 10, 0.3)])])
        assert len(result) == 0

    def test_invalid_conf_type(self):
        with pytest.raises(ValueError):
            WeightedBoxesFusion(conf_type="median")

    def test_invalid_iou_threshold(self):
        with pytest.raises(ValueError):
            WeightedBoxesFusion(iou_threshold=-0.5)

    def test_three_model_partial_agreement(self):
        wbf = WeightedBoxesFusion()
        result = wbf.fuse(
            [
                frame([det(0, 0, 10, 10, 0.9, source="a")]),
                frame([det(0, 0, 10, 10, 0.6, source="b")]),
                frame([], source="c"),
            ]
        )
        merged = result.detections[0]
        # avg 0.75 scaled by 2/3.
        assert merged.confidence == pytest.approx(0.75 * 2 / 3)

    def test_improves_recall_over_single_model(self):
        """The core ensembling premise: the union finds more objects."""
        wbf = WeightedBoxesFusion()
        a = frame([det(0, 0, 10, 10, 0.9, source="a")], source="a")
        b = frame([det(100, 100, 120, 120, 0.9, source="b")], source="b")
        result = wbf.fuse([a, b])
        assert len(result) == 2
