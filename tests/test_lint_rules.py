"""Fixture-driven tests for every RPR rule: true positives, the
false-positive guards each rule promises, and the suppression machinery.

Fixtures are inline strings handed to :func:`repro.lint.lint_source` with
a *virtual path*, which is how they opt in or out of path-scoped rules —
nothing here ships offending code in the real tree (the CI gate lints
``tests/`` too).
"""

from __future__ import annotations

import textwrap

from repro.lint import lint_source

CORE = "src/repro/core/fixture.py"
SIM = "src/repro/simulation/fixture.py"
ENGINE = "src/repro/engine/fixture.py"


def run(source: str, path: str = CORE, select: set[str] | None = None):
    return lint_source(textwrap.dedent(source), path, select=select)


def ids(violations) -> list[str]:
    return [v.rule_id for v in violations]


class TestGlobalRngRule:
    def test_numpy_global_call_flagged(self):
        violations = run(
            """
            import numpy as np

            def draw():
                return np.random.rand(3)
            """
        )
        assert ids(violations) == ["RPR001"]
        assert "numpy.random.rand" in violations[0].message

    def test_bare_default_rng_flagged(self):
        violations = run(
            """
            import numpy as np

            def make():
                return np.random.default_rng()
            """
        )
        assert ids(violations) == ["RPR001"]

    def test_aliased_submodule_import_flagged(self):
        violations = run(
            """
            import numpy.random as npr

            def draw():
                return npr.normal()
            """
        )
        assert ids(violations) == ["RPR001"]

    def test_stdlib_random_flagged(self):
        violations = run(
            """
            import random

            def pick(items):
                return random.choice(items)
            """
        )
        assert ids(violations) == ["RPR001"]

    def test_from_import_of_stdlib_random_flagged(self):
        violations = run(
            """
            from random import randint

            def roll():
                return randint(1, 6)
            """
        )
        assert ids(violations) == ["RPR001"]

    def test_derived_generator_methods_not_flagged(self):
        # The sanctioned pattern: method calls on a derived Generator.
        violations = run(
            """
            from repro.utils.rng import derive_rng

            def draw(seed):
                rng = derive_rng(seed, "detector", 3)
                return rng.normal(size=4) + rng.random()
            """
        )
        assert violations == []

    def test_rule_scoped_to_restricted_packages(self):
        source = """
        import numpy as np

        def draw():
            return np.random.rand(3)
        """
        assert ids(run(source, path=CORE)) == ["RPR001"]
        assert run(source, path="src/repro/runner/fixture.py") == []

    def test_rng_module_itself_exempt(self):
        source = """
        import numpy as np

        def derive():
            return np.random.default_rng(7)
        """
        assert run(source, path="src/repro/utils/rng.py") == []


class TestWallClockRule:
    def test_perf_counter_flagged(self):
        violations = run(
            """
            import time

            def measure():
                return time.perf_counter()
            """,
            path=SIM,
        )
        assert ids(violations) == ["RPR002"]

    def test_from_import_time_flagged(self):
        violations = run(
            """
            from time import monotonic

            def measure():
                return monotonic()
            """,
            path=SIM,
        )
        assert ids(violations) == ["RPR002"]

    def test_argless_datetime_now_flagged(self):
        violations = run(
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """,
            path=SIM,
        )
        assert ids(violations) == ["RPR002"]

    def test_tz_aware_datetime_now_not_flagged(self):
        # The rule bans *argless* now() only (matching the issue contract);
        # explicit-tz construction is assumed deliberate.
        violations = run(
            """
            from datetime import datetime, timezone

            def stamp():
                return datetime.now(timezone.utc)
            """,
            path=SIM,
        )
        assert violations == []

    def test_backends_and_benchmarks_exempt(self):
        source = """
        import time

        def measure():
            return time.perf_counter()
        """
        assert run(source, path="src/repro/engine/backends.py") == []
        assert run(source, path="benchmarks/fixture.py") == []

    def test_simulated_clock_methods_not_flagged(self):
        violations = run(
            """
            def bill(clock, detector):
                clock.charge(detector.inference_time_ms)
                return clock.now_ms()
            """,
            path=SIM,
        )
        assert violations == []


class TestUnboundedCacheRule:
    def test_module_level_dict_mutated_in_function(self):
        violations = run(
            """
            _CACHE = {}

            def remember(key, value):
                _CACHE[key] = value
            """
        )
        assert ids(violations) == ["RPR003"]

    def test_growth_method_calls_flagged(self):
        violations = run(
            """
            _SEEN = []

            def record(item):
                _SEEN.append(item)
            """
        )
        assert ids(violations) == ["RPR003"]

    def test_import_time_population_allowed(self):
        violations = run(
            """
            _TABLE = {}
            for key in ("a", "b", "c"):
                _TABLE[key] = len(key)
            """
        )
        assert violations == []

    def test_constant_mapping_not_flagged(self):
        violations = run(
            """
            _LIMITS = {"mes": 5, "mes_b": 7}

            def limit(name):
                return _LIMITS[name]
            """
        )
        assert violations == []

    def test_function_local_cache_not_flagged(self):
        violations = run(
            """
            def summarize(items):
                acc = {}
                for item in items:
                    acc[item.key] = item.value
                return acc
            """
        )
        assert violations == []

    def test_class_level_container_mutated_via_self(self):
        violations = run(
            """
            class Memo:
                cache = {}

                def put(self, key, value):
                    self.cache[key] = value
            """
        )
        assert ids(violations) == ["RPR003"]

    def test_shadowed_instance_attribute_not_flagged(self):
        # ``self.cache = {}`` in __init__ shadows the class default, so
        # the shared class-level container is inert.
        violations = run(
            """
            class Memo:
                cache = {}

                def __init__(self):
                    self.cache = {}

                def put(self, key, value):
                    self.cache[key] = value
            """
        )
        assert violations == []

    def test_justified_suppression_honoured(self):
        violations = run(
            """
            _REGISTRY = {}

            def register(name, factory):
                _REGISTRY[name] = factory  # repro-lint: disable=RPR003 -- bounded: setup-time registry
            """
        )
        assert violations == []


class TestUnlockedSharedMutationRule:
    def test_self_method_submitted_to_backend(self):
        violations = run(
            """
            class Runner:
                def __init__(self, backend):
                    self.backend = backend
                    self.results = {}

                def process(self, jobs):
                    self.backend.run(jobs, self._collect)

                def _collect(self, key, value):
                    self.results[key] = value
            """,
            path=ENGINE,
        )
        assert ids(violations) == ["RPR004"]
        assert "self.results" in violations[0].message

    def test_lambda_submitted_to_pool(self):
        violations = run(
            """
            class Runner:
                def __init__(self, pool):
                    self.pool = pool
                    self.log = []

                def go(self, item):
                    self.pool.submit(lambda: self.log.append(item))
            """,
            path=ENGINE,
        )
        assert ids(violations) == ["RPR004"]

    def test_lock_guarded_write_not_flagged(self):
        violations = run(
            """
            class Runner:
                def __init__(self, backend, lock):
                    self.backend = backend
                    self._lock = lock
                    self.results = {}

                def process(self, jobs):
                    self.backend.run(jobs, self._collect)

                def _collect(self, key, value):
                    with self._lock:
                        self.results[key] = value
            """,
            path=ENGINE,
        )
        assert violations == []

    def test_local_accumulation_not_flagged(self):
        violations = run(
            """
            def fan_out(pool, jobs):
                def work(job):
                    acc = []
                    acc.append(job)
                    return acc

                return list(pool.map(work, jobs))
            """,
            path=ENGINE,
        )
        assert violations == []

    def test_single_threaded_pipeline_run_not_in_scope(self):
        # FramePipeline.run drives hooks on the calling thread; receiver
        # name scoping keeps it out of this rule.
        violations = run(
            """
            class Algorithm:
                def __init__(self, pipeline):
                    self.pipeline = pipeline
                    self.history = []

                def iterate(self, frames):
                    for record in self.pipeline.run(frames, self._choose):
                        self.history.append(record)

                def _choose(self, env, t, frame):
                    self.history.append(t)
                    return None, []
            """,
            path=ENGINE,
        )
        assert violations == []

    def test_one_hop_helper_call_followed(self):
        violations = run(
            """
            _TOTALS = {}

            def _bump(key):
                _TOTALS[key] = _TOTALS.get(key, 0) + 1

            def work(job):
                _bump(job.key)
                return job

            def fan_out(executor, jobs):
                return list(executor.map(work, jobs))
            """,
            path=ENGINE,
        )
        assert "RPR004" in ids(violations)


class TestBlanketSuppressionRule:
    def test_bare_type_ignore_flagged(self):
        violations = run("x = compute()  # type: ignore\n")
        assert ids(violations) == ["RPR005"]

    def test_coded_type_ignore_allowed(self):
        assert run("x = compute()  # type: ignore[name-defined]\n") == []

    def test_bare_noqa_flagged(self):
        violations = run("import os  # noqa\n")
        assert ids(violations) == ["RPR005"]

    def test_coded_noqa_allowed(self):
        assert run("import os  # noqa: F401\n") == []

    def test_unjustified_disable_flagged_and_not_self_suppressible(self):
        violations = run(
            """
            _CACHE = {}

            def remember(key, value):
                _CACHE[key] = value  # repro-lint: disable=all
            """
        )
        # The bare disable hides RPR003 but cannot launder itself.
        assert ids(violations) == ["RPR005"]

    def test_justified_disable_clean(self):
        assert (
            run("value = 3  # repro-lint: disable=RPR003 -- bounded: constant\n") == []
        )


class TestSuppressionMechanics:
    def test_preceding_comment_line_suppresses(self):
        violations = run(
            """
            import time

            def measure():
                # repro-lint: disable=RPR002 -- fixture: measurement-only probe
                return time.perf_counter()
            """,
            path=SIM,
        )
        assert violations == []

    def test_suppression_is_rule_specific(self):
        violations = run(
            """
            import time

            def measure():
                return time.perf_counter()  # repro-lint: disable=RPR001 -- wrong rule on purpose
            """,
            path=SIM,
        )
        assert ids(violations) == ["RPR002"]


class TestEngineBasics:
    def test_select_narrows_rules(self):
        source = """
        import time

        _CACHE = {}

        def f(key):
            _CACHE[key] = time.perf_counter()
        """
        # Both land on the same line; ordering is by column, so the
        # assignment (RPR003) precedes the clock call inside it (RPR002).
        assert ids(run(source, path=SIM)) == ["RPR003", "RPR002"]
        assert ids(run(source, path=SIM, select={"RPR003"})) == ["RPR003"]

    def test_syntax_error_reported_as_parse_violation(self):
        violations = run("def broken(:\n")
        assert ids(violations) == ["RPR000"]

    def test_violations_carry_location(self):
        violations = run(
            """
            import time

            def measure():
                return time.perf_counter()
            """,
            path=SIM,
        )
        assert violations[0].path == SIM
        assert violations[0].line == 5
        assert violations[0].col > 0
