"""Shared fixtures: small deterministic worlds, detectors, environments."""

from __future__ import annotations

import pytest

from repro.core.environment import DetectionEnvironment
from repro.core.scoring import WeightedLogScore
from repro.detection.boxes import BBox
from repro.detection.types import Detection
from repro.simulation.detectors import SimulatedDetector
from repro.simulation.lidar import SimulatedLidar
from repro.simulation.profiles import make_profile
from repro.simulation.scenes import SCENE_CATEGORIES
from repro.simulation.video import Frame, GroundTruthObject
from repro.simulation.world import generate_video


def make_detection(
    x1=10.0, y1=10.0, x2=50.0, y2=50.0, conf=0.9, label="car", source=None
) -> Detection:
    """A detection with convenient defaults for tests."""
    return Detection(BBox(x1, y1, x2, y2), conf, label, source=source)


@pytest.fixture
def clear_category():
    return SCENE_CATEGORIES["clear"]


@pytest.fixture
def night_category():
    return SCENE_CATEGORIES["night"]


@pytest.fixture
def simple_frame(clear_category) -> Frame:
    """A hand-built frame with three ground-truth objects."""
    objects = (
        GroundTruthObject(0, BBox(100, 100, 400, 300), "car", 12.0, 0.9),
        GroundTruthObject(1, BBox(600, 200, 750, 500), "pedestrian", 15.0, 0.8),
        GroundTruthObject(2, BBox(900, 150, 1300, 450), "truck", 20.0, 0.85),
    )
    return Frame(index=0, category=clear_category, objects=objects)


@pytest.fixture
def small_video():
    """A short generated clear-weather video."""
    return generate_video("test/clear", num_frames=30, category="clear", seed=7)


@pytest.fixture
def night_video():
    return generate_video("test/night", num_frames=30, category="night", seed=11)


@pytest.fixture
def detector_pool():
    """Three tiny detectors specialized on different domains."""
    return [
        SimulatedDetector(make_profile("yolov7-tiny", "clear"), seed=1),
        SimulatedDetector(make_profile("yolov7-tiny", "night"), seed=2),
        SimulatedDetector(make_profile("yolov7-tiny", "rainy"), seed=3),
    ]


@pytest.fixture
def lidar():
    return SimulatedLidar(seed=42)


@pytest.fixture
def environment(detector_pool, lidar):
    """A ready detection environment over the three-detector pool."""
    return DetectionEnvironment(
        detectors=detector_pool,
        reference=lidar,
        scoring=WeightedLogScore(0.5),
    )
