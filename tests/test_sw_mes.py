"""Unit tests for SW-MES, D-MES, and drift adaptation."""

import pytest

from repro.core.environment import DetectionEnvironment, EvaluationStore
from repro.core.mes import MES
from repro.core.scoring import WeightedLogScore
from repro.core.sw_mes import DMES, SWMES, suggested_window
from repro.simulation.drift import compose_drifting_video
from repro.simulation.world import generate_video


class TestSuggestedWindow:
    def test_no_drift_means_no_forgetting(self):
        assert suggested_window(1000, 0) == 1000

    def test_formula(self):
        import math

        n, xi = 10_000, 4
        expected = int(math.sqrt(n * math.log(n) / xi))
        assert suggested_window(n, xi) == expected

    def test_more_breakpoints_smaller_window(self):
        assert suggested_window(10_000, 16) < suggested_window(10_000, 4)

    def test_invalid(self):
        with pytest.raises(ValueError):
            suggested_window(0, 1)
        with pytest.raises(ValueError):
            suggested_window(10, -1)


class TestSWMES:
    def test_processes_all_frames(self, environment, small_video):
        result = SWMES(window=10, gamma=2).run(environment, small_video.frames)
        assert result.frames_processed == len(small_video)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SWMES(window=0)
        with pytest.raises(ValueError):
            SWMES(window=5, gamma=0)

    def test_statistics_are_windowed(self, environment, small_video):
        algo = SWMES(window=5, gamma=2)
        algo.run(environment, small_video.frames)
        t = len(small_video)
        for key in environment.all_ensembles:
            assert algo.statistics.count(key, now=t) <= 5

    def test_deterministic(self, detector_pool, lidar, small_video):
        def run():
            env = DetectionEnvironment(
                detector_pool, lidar, scoring=WeightedLogScore(0.5)
            )
            return SWMES(window=8, gamma=2).run(env, small_video.frames)

        assert [r.selected for r in run().records] == [
            r.selected for r in run().records
        ]


class TestDMES:
    def test_processes_all_frames(self, environment, small_video):
        result = DMES(discount=0.95, gamma=2).run(environment, small_video.frames)
        assert result.frames_processed == len(small_video)

    def test_invalid_discount(self):
        with pytest.raises(ValueError):
            DMES(discount=1.5)


class TestDriftAdaptation:
    @pytest.fixture(scope="class")
    def drifting_frames(self):
        clear = generate_video("sw/clear", 600, "clear", seed=5)
        night = generate_video("sw/night", 600, "night", seed=6)
        video = compose_drifting_video(
            "sw/c&n", [clear, night], num_segments=3, seed=3
        )
        return video

    def test_sw_mes_adapts_under_drift(self, detector_pool, lidar, drifting_frames):
        """The Figure 7 claim at test scale.

        Under abrupt drift the windowed statistics recover after each
        breakpoint, so SW-MES must clearly beat a commit-once strategy
        (EF) and stay close to MES.  (At this toy scale SW-MES's permanent
        exploration floor keeps it slightly below MES — see EXPERIMENTS.md
        for the full-scale analysis.)
        """
        from repro.core.baselines import ExploreFirst

        cache = EvaluationStore()
        scoring = WeightedLogScore(0.5)

        def run(algorithm):
            env = DetectionEnvironment(
                detector_pool, lidar, scoring=scoring, cache=cache
            )
            return algorithm.run(env, drifting_frames.frames)

        mes = run(MES(gamma=3))
        ef = run(ExploreFirst(delta=3))
        window = max(
            suggested_window(
                len(drifting_frames), drifting_frames.num_breakpoints
            ),
            len(drifting_frames) // 4,
        )
        sw = run(SWMES(window=window, gamma=3))

        # Windowed adaptation beats the committed strategy under drift...
        assert sw.s_sum > ef.s_sum
        # ...and stays within a small factor of MES.
        assert sw.s_sum >= mes.s_sum * 0.90
