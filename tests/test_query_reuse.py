"""v1/v2 equivalence and cross-query reuse guarantees.

The operator executor must produce bit-identical rows to the old
straight-line executor (rewrites only remove provably discarded work),
and a warm materialized store must change detector-invocation counts
only — never a result byte.
"""

from __future__ import annotations

import pytest

from repro.core.environment import DetectionEnvironment
from repro.engine.backends import wall_timer
from repro.obs import Observability
from repro.query.executor import QueryEngine
from repro.query.physical import Row
from repro.query.predicates import evaluate_expr

MODELS = "yolov7-tiny-clear, yolov7-tiny-night, yolov7-tiny-rainy"


def _v1_execute(engine: QueryEngine, text: str) -> list[Row]:
    """The seed repo's straight-line executor, kept as the equivalence
    reference: bind, run the algorithm over the *whole* video with a
    full-scoring environment, materialize rows, then filter."""
    plan = engine.plan(text)
    process = plan.query.process
    frames = engine.catalog.video(process.video)
    detectors = [engine.catalog.detector(m) for m in process.models]
    reference_name = (
        process.reference
        if process.reference is not None
        else engine.catalog.default_reference()
    )
    env = DetectionEnvironment(
        detectors=detectors,
        reference=engine.catalog.reference(reference_name),
        scoring=engine.scoring,
        fusion=engine.fusion,
    )
    detections_by_index = {}

    def capture(frame, batch, record):
        detections_by_index[record.frame_index] = batch.evaluations[
            record.selected
        ].detections

    selection = plan.algorithm.run(
        env, frames, budget_ms=plan.budget_ms, observers=[capture]
    )
    rows = []
    for record in selection.records:
        row = Row(
            frame_id=record.frame_index,
            detections=detections_by_index[record.frame_index],
            score=record.est_score,
            ensemble=record.selected,
        )
        if plan.query.where is None or evaluate_expr(
            plan.query.where,
            row.detections,
            {"frameid": float(row.frame_id), "score": row.score},
        ):
            rows.append(row)
    return rows


@pytest.fixture
def make_engine(detector_pool, lidar, small_video):
    def build(**kwargs):
        engine = QueryEngine(**kwargs)
        engine.register_video("inputVideo", small_video)
        for det in detector_pool:
            engine.register_detector(det)
        engine.register_reference(lidar)
        return engine

    return build


class TestV1V2Equivalence:
    @pytest.mark.parametrize(
        "query",
        [
            # Pushdown fires (MES is causal): rows must still match the
            # full-scan v1 run bit for bit.
            f"SELECT frameID FROM (PROCESS inputVideo PRODUCE frameID, "
            f"Detections, score USING MES({MODELS}; lidar-ref) "
            f"WITH gamma=2) WHERE frameID < 12",
            # No rewrite applies.
            f"SELECT frameID FROM (PROCESS inputVideo PRODUCE frameID, "
            f"Detections, score USING MES({MODELS}; lidar-ref) "
            f"WITH gamma=2) WHERE COUNT('car') >= 2",
            # Budgeted MES-B.
            f"SELECT frameID FROM (PROCESS inputVideo PRODUCE frameID, "
            f"Detections, score USING MES-B({MODELS}; lidar-ref) "
            f"WITH budget=300, gamma=2)",
            # SGL: pushdown must NOT fire (pre-scan calibration).
            f"SELECT frameID FROM (PROCESS inputVideo PRODUCE frameID, "
            f"Detections, score USING SGL({MODELS}; lidar-ref)) "
            f"WHERE frameID < 6",
        ],
    )
    def test_rows_bit_identical(self, make_engine, query):
        engine = make_engine()
        assert engine.execute(query).rows == _v1_execute(engine, query)

    def test_pruned_query_rows_match_except_score(self, make_engine):
        """Projection pruning zeroes the (never read) score column and
        elides REF scoring; every surfaced column is unchanged."""
        query = (
            f"SELECT frameID FROM (PROCESS inputVideo PRODUCE frameID, "
            f"Detections USING BF({MODELS})) WHERE COUNT('car') >= 2"
        )
        engine = make_engine()
        v2 = engine.execute(query).rows
        v1 = _v1_execute(make_engine(), query)
        assert [r.frame_id for r in v2] == [r.frame_id for r in v1]
        assert [r.detections for r in v2] == [r.detections for r in v1]
        assert [r.ensemble for r in v2] == [r.ensemble for r in v1]
        assert all(r.score == 0.0 for r in v2)


def _detector_invocations(obs: Observability) -> float:
    return sum(
        value
        for (name, _), value in obs.snapshot().counters.items()
        if name == "repro_detector_invocations_total"
    )


def _reference_invocations(obs: Observability) -> float:
    return sum(
        value
        for (name, _), value in obs.snapshot().counters.items()
        if name == "repro_reference_invocations_total"
    )


class TestCrossQueryReuse:
    QUERY = (
        f"SELECT frameID FROM (PROCESS inputVideo PRODUCE frameID, "
        f"Detections, score USING MES({MODELS}; lidar-ref) WITH gamma=2) "
        f"WHERE frameID < 15"
    )

    def test_shared_store_reuses_within_engine(self, make_engine):
        obs = Observability(level="metrics", timer=wall_timer)
        engine = make_engine(obs=obs)
        first = engine.execute(self.QUERY)
        cold = _detector_invocations(obs)
        assert cold > 0
        second = engine.execute(self.QUERY)
        assert _detector_invocations(obs) == cold  # zero new inferences
        assert second.rows == first.rows

    def test_warm_matstore_runs_zero_detector_invocations(
        self, make_engine, tmp_path
    ):
        obs_cold = Observability(level="metrics", timer=wall_timer)
        with make_engine(obs=obs_cold, materialize_dir=tmp_path) as engine:
            first = engine.execute(self.QUERY)
        assert _detector_invocations(obs_cold) > 0

        # A fresh engine (fresh process, as far as state is concerned).
        obs_warm = Observability(level="metrics", timer=wall_timer)
        with make_engine(obs=obs_warm, materialize_dir=tmp_path) as engine:
            second = engine.execute(self.QUERY)
            assert _detector_invocations(obs_warm) == 0
            assert _reference_invocations(obs_warm) == 0
            assert engine.store.stats().tier_hits > 0
        assert second.rows == first.rows  # warm store changes no result bytes

    def test_overlapping_query_with_different_algorithm_reuses(
        self, make_engine, tmp_path
    ):
        warmup = (
            f"SELECT frameID FROM (PROCESS inputVideo PRODUCE frameID, "
            f"Detections, score USING BF({MODELS}; lidar-ref)) "
            f"WHERE frameID < 15"
        )
        with make_engine(materialize_dir=tmp_path) as engine:
            engine.execute(warmup)

        obs = Observability(level="metrics", timer=wall_timer)
        overlapping = (
            f"SELECT frameID FROM (PROCESS inputVideo PRODUCE frameID, "
            f"Detections, score USING MES({MODELS}; lidar-ref) "
            f"WITH gamma=2) WHERE frameID < 10"
        )
        with make_engine(obs=obs, materialize_dir=tmp_path) as engine:
            result = engine.execute(overlapping)
        # Brute force materialized every detector output and every ensemble
        # evaluation for frames 0..14; MES only ever touches a subset of
        # those, so the overlapping query re-infers nothing.
        assert _detector_invocations(obs) == 0
        assert result.frame_ids() == list(range(10))

    def test_different_reference_does_not_collide(
        self, make_engine, detector_pool, small_video, tmp_path
    ):
        """Context-tagged keys: changing REF must change estimates, not
        resurrect the other configuration's cached ones."""
        from repro.simulation.lidar import SimulatedLidar

        query_tpl = (
            "SELECT frameID FROM (PROCESS inputVideo PRODUCE frameID, "
            "Detections, score USING MES(%s; %%s) WITH gamma=2) "
            "WHERE frameID < 8" % MODELS
        )
        with make_engine(materialize_dir=tmp_path) as engine:
            scores_a = engine.execute(query_tpl % "lidar-ref").column("score")

        engine = QueryEngine(materialize_dir=tmp_path)
        engine.register_video("inputVideo", small_video)
        for det in detector_pool:
            engine.register_detector(det)
        other = SimulatedLidar(seed=99, name="other-ref")
        engine.register_reference(other)
        with engine:
            scores_b = engine.execute(query_tpl % "other-ref").column("score")
        assert scores_a != scores_b
